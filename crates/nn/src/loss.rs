//! Loss functions with gradients.

use crate::tensor::Tensor;

/// Numerically stable softmax over the last axis of a `[batch, classes]`
/// tensor.
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.ndim(), 2, "softmax expects [batch, classes]");
    let mut out = logits.clone();
    let classes = logits.shape()[1];
    for r in 0..logits.shape()[0] {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
        debug_assert_eq!(row.len(), classes);
    }
    out
}

/// Mean softmax cross-entropy over a batch with integer labels.
///
/// Returns `(loss, dL/dlogits)` with the usual fused gradient
/// `softmax(logits) − one_hot(label)` scaled by `1/batch`.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape()[0], labels.len(), "batch/label count mismatch");
    let probs = softmax(logits);
    let batch = labels.len();
    let classes = logits.shape()[1];
    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range for {classes} classes");
        let p = probs.at2(r, label).max(1e-12);
        loss -= p.ln();
        *grad.at2_mut(r, label) -= 1.0;
    }
    let scale = 1.0 / batch as f32;
    (loss * scale, grad.map(|g| g * scale))
}

/// Mean squared error and its gradient.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len() as f32;
    let diff = pred.zip_map(target, |a, b| a - b);
    let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / n;
    let grad = diff.map(|d| 2.0 * d / n);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let l = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let p = softmax(&l);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(&[1, 3], vec![101.0, 102.0, 103.0]);
        let pa = softmax(&a);
        let pb = softmax(&b);
        for (x, y) in pa.data().iter().zip(pb.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_of_confident_correct_prediction_is_small() {
        let l = Tensor::from_vec(&[1, 3], vec![10.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&l, &[0]);
        assert!(loss < 0.01, "loss {loss}");
        let (bad_loss, _) = softmax_cross_entropy(&l, &[2]);
        assert!(bad_loss > 5.0, "loss {bad_loss}");
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let l = Tensor::from_vec(&[2, 3], vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&l, &labels);
        let eps = 1e-3;
        for i in 0..l.len() {
            let mut lp = l.clone();
            lp.data_mut()[i] += eps;
            let mut lm = l.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels);
            let (fm, _) = softmax_cross_entropy(&lm, &labels);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - grad.data()[i]).abs() < 1e-3,
                "grad mismatch at {i}: fd={fd} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        // softmax − one_hot sums to zero per row.
        let l = Tensor::from_vec(&[1, 4], vec![0.3, 0.1, -0.5, 0.9]);
        let (_, g) = softmax_cross_entropy(&l, &[1]);
        assert!(g.row(0).iter().sum::<f32>().abs() < 1e-6);
    }

    #[test]
    fn mse_basics() {
        let p = Tensor::from_slice(&[1.0, 2.0]);
        let t = Tensor::from_slice(&[0.0, 0.0]);
        let (loss, grad) = mse(&p, &t);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }
}
