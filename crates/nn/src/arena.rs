//! Preallocated tensor scratch for the zero-allocation serving path.
//!
//! [`TensorArena`] owns a pool of recycled `f32` slabs. Hot-path code
//! checks a [`Tensor`] out with [`TensorArena::take`], fills it, and
//! returns the backing storage with [`TensorArena::give`]; once the pool
//! is warm, a take/give cycle touches no allocator. The arena counts the
//! heap-growth events it *does* perform ([`TensorArena::heap_allocs`]),
//! which is how `ablation_serve` proves the steady state allocates
//! nothing, and mirrors its gauges to `trident-obs`
//! (`ArenaBytesInUse` / `ArenaHighWater` / `HotPathAllocs`) when tracing
//! is enabled.
//!
//! ## Lifecycle
//!
//! ```text
//!   with_capacity ──▶ [ free slabs ] ──take──▶ Tensor (checked out)
//!                        ▲                          │
//!                        └──────────give────────────┘
//!                     reset(): generation += 1, assert live == 0
//! ```
//!
//! Checked-out buffers are *owned* `Tensor`s (their storage moves out of
//! the pool), so aliasing a slab from two call sites is impossible by
//! construction — the double-checkout hazard of pointer-based arenas
//! can't be expressed. What remains detectable is an imbalance: debug
//! builds assert that every take is matched by a give before
//! [`TensorArena::reset`], and that give is never called on an empty
//! checkout ledger (returning a foreign tensor).

use crate::tensor::Tensor;
use trident_obs as obs;

/// A recycling scratch allocator for [`Tensor`]s of mixed shapes.
///
/// Slabs are handed out most-recently-returned first (LIFO), which in the
/// steady state of a serving loop — same shapes in the same order every
/// batch — reuses each buffer at full capacity and never grows.
#[derive(Debug, Default)]
pub struct TensorArena {
    /// Recycled backing buffers, capacity preserved across cycles.
    free: Vec<Vec<f32>>,
    /// Tensors currently checked out (takes minus gives).
    live: usize,
    /// Bumped by [`TensorArena::reset`]; steady-state loops reset once
    /// per batch so leak imbalances surface at a batch boundary.
    generation: u64,
    /// Bytes currently checked out.
    bytes_in_use: usize,
    /// Maximum of `bytes_in_use` over the arena's lifetime.
    high_water: usize,
    /// Heap-growth events: a take that found no recycled slab, or one
    /// whose slab had to grow. Zero after warm-up is the zero-alloc
    /// claim.
    heap_allocs: u64,
}

impl TensorArena {
    /// An empty arena; every early take is a counted heap allocation.
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena pre-seeded with `slabs` buffers of `elems` elements each.
    /// Construction-time growth is warm-up, not hot-path debt, so it is
    /// not counted in [`TensorArena::heap_allocs`].
    pub fn with_capacity(slabs: usize, elems: usize) -> Self {
        let mut arena = Self::new();
        arena.reserve(slabs, elems);
        arena
    }

    /// Grow the free pool to at least `slabs` buffers of at least `elems`
    /// elements each, without counting the growth as hot-path debt.
    /// Fleet builders call this once per replica at build time.
    pub fn reserve(&mut self, slabs: usize, elems: usize) {
        for slab in &mut self.free {
            if slab.capacity() < elems {
                slab.reserve(elems - slab.len());
            }
        }
        while self.free.len() < slabs {
            self.free.push(Vec::with_capacity(elems));
        }
    }

    /// Check a zero-filled tensor of `shape` out of the arena.
    pub fn take(&mut self, shape: &[usize]) -> Tensor {
        let len: usize = shape.iter().product();
        let mut slab = self.free.pop().unwrap_or_default();
        // Whether the slab is brand new or a recycled one that has to
        // grow, any capacity change is one heap event.
        let had = slab.capacity();
        slab.clear();
        slab.resize(len, 0.0);
        if slab.capacity() > had {
            self.count_heap_alloc();
        }
        self.live += 1;
        self.bytes_in_use += len * std::mem::size_of::<f32>();
        if self.bytes_in_use > self.high_water {
            self.high_water = self.bytes_in_use;
        }
        obs::store(obs::Counter::ArenaBytesInUse, self.bytes_in_use as u64);
        obs::store_max(obs::Counter::ArenaHighWater, self.high_water as u64);
        Tensor::from_vec(shape, slab)
    }

    /// Return a tensor's backing storage to the pool.
    pub fn give(&mut self, t: Tensor) {
        debug_assert!(self.live > 0, "arena give without a matching take");
        self.live = self.live.saturating_sub(1);
        let bytes = t.len() * std::mem::size_of::<f32>();
        self.bytes_in_use = self.bytes_in_use.saturating_sub(bytes);
        obs::store(obs::Counter::ArenaBytesInUse, self.bytes_in_use as u64);
        self.free.push(t.into_vec());
    }

    /// End a generation: assert (debug builds) that every checkout was
    /// returned, then bump the generation counter. Steady-state loops
    /// call this once per batch.
    pub fn reset(&mut self) {
        debug_assert_eq!(
            self.live, 0,
            "arena reset with {} tensor(s) still checked out",
            self.live
        );
        self.generation += 1;
    }

    fn count_heap_alloc(&mut self) {
        self.heap_allocs += 1;
        obs::add(obs::Counter::HotPathAllocs, 1);
    }

    /// Bytes currently checked out.
    pub fn bytes_in_use(&self) -> usize {
        self.bytes_in_use
    }

    /// Lifetime maximum of [`TensorArena::bytes_in_use`]. Two identical
    /// consecutive batches must leave this unchanged (the reuse
    /// invariant pinned by the arena proptests).
    pub fn high_water_bytes(&self) -> usize {
        self.high_water
    }

    /// Heap-growth events since construction (see the type docs).
    pub fn heap_allocs(&self) -> u64 {
        self.heap_allocs
    }

    /// Tensors currently checked out.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Completed generations (reset count).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Recycled slabs currently available.
    pub fn free_slabs(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_cycle_reuses_capacity() {
        let mut arena = TensorArena::new();
        let t = arena.take(&[4, 8]);
        assert_eq!(t.shape(), &[4, 8]);
        assert!(t.data().iter().all(|&v| v == 0.0));
        let cold_allocs = arena.heap_allocs();
        assert!(cold_allocs >= 1, "cold take must count its allocation");
        arena.give(t);
        arena.reset();
        // Steady state: same shape cycles allocate nothing further.
        for _ in 0..16 {
            let t = arena.take(&[4, 8]);
            arena.give(t);
            arena.reset();
        }
        assert_eq!(arena.heap_allocs(), cold_allocs);
        assert_eq!(arena.generation(), 17);
    }

    #[test]
    fn warmed_arena_counts_zero_hot_path_allocs() {
        let mut arena = TensorArena::with_capacity(3, 64);
        assert_eq!(arena.heap_allocs(), 0, "warm-up growth is not hot-path debt");
        let a = arena.take(&[8, 8]);
        let b = arena.take(&[2, 5]);
        let c = arena.take(&[64]);
        assert_eq!(arena.heap_allocs(), 0);
        assert_eq!(arena.live(), 3);
        arena.give(c);
        arena.give(b);
        arena.give(a);
        arena.reset();
        assert_eq!(arena.bytes_in_use(), 0);
    }

    #[test]
    fn high_water_is_stable_across_identical_batches() {
        let mut arena = TensorArena::with_capacity(2, 128);
        let run_batch = |arena: &mut TensorArena| {
            let x = arena.take(&[4, 16]);
            let y = arena.take(&[4, 10]);
            arena.give(x);
            arena.give(y);
            arena.reset();
            arena.high_water_bytes()
        };
        let first = run_batch(&mut arena);
        let second = run_batch(&mut arena);
        assert_eq!(first, second, "identical batches must reuse the high-water mark");
        assert_eq!(first, (4 * 16 + 4 * 10) * 4);
    }

    #[test]
    fn gauges_track_bytes() {
        let mut arena = TensorArena::with_capacity(1, 16);
        let t = arena.take(&[2, 2]);
        assert_eq!(arena.bytes_in_use(), 16);
        assert_eq!(arena.high_water_bytes(), 16);
        arena.give(t);
        assert_eq!(arena.bytes_in_use(), 0);
        assert_eq!(arena.high_water_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "still checked out")]
    #[cfg(debug_assertions)]
    fn reset_with_live_tensor_panics_in_debug() {
        let mut arena = TensorArena::new();
        let _t = arena.take(&[2]);
        arena.reset();
    }
}
