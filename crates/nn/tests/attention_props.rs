//! Property tests for the attention kernels (DESIGN.md §16):
//!
//! * softmax rows sum to 1 within an ulp-scaled bound and commute with
//!   column permutations,
//! * attention against an identity value matrix reproduces the softmax
//!   weights bitwise (the probability mass is directly observable),
//! * the fused arena path is bitwise identical to the straight-line
//!   unfused oracle at 1, 2 and 8 threads.
//!
//! Score matrices are drawn above the linalg `PAR_THRESHOLD` so the
//! parallel blocked paths genuinely engage. The thread override is
//! process-global, so every case holds `OVERRIDE_LOCK` for its body.

use proptest::prelude::*;
use rayon::pool;
use std::sync::{Mutex, MutexGuard, OnceLock};
use trident_nn::{
    attention_fused_into, attention_scale, attention_unfused, softmax_rows, Tensor, TensorArena,
};

fn override_lock() -> MutexGuard<'static, ()> {
    static OVERRIDE_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match OVERRIDE_LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Deterministic, sign-varied f32 fill so additions are order-sensitive
/// in the low mantissa bits.
fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2003) as f32 - 1001.0) / 617.0
        })
        .collect()
}

fn bits_of(data: &[f32]) -> Vec<u32> {
    data.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every softmax row sums to 1 within `cols` ulps (the sum is `cols`
    /// additions of exact-ratio terms), and permuting columns commutes
    /// with the softmax up to the same accumulation tolerance.
    #[test]
    fn softmax_rows_normalise_and_commute_with_permutation(
        rows in 4usize..12,
        cols in 64usize..128,
        seed in 1u64..1_000_000,
    ) {
        let x = Tensor::from_vec(&[rows, cols], fill(rows * cols, seed));
        let p = softmax_rows(&x);
        let ulp_bound = cols as f32 * f32::EPSILON;
        for row in p.data().chunks(cols) {
            let sum: f32 = row.iter().sum();
            prop_assert!(
                (sum - 1.0).abs() <= ulp_bound,
                "row sum {sum} off by more than {ulp_bound}"
            );
            prop_assert!(row.iter().all(|&v| v >= 0.0), "negative probability");
        }
        // Reverse the columns: softmax(perm(x)) must equal
        // perm(softmax(x)) within accumulation tolerance (the row max is
        // permutation-invariant; only the sum's order changes).
        let mut rev_data = Vec::with_capacity(rows * cols);
        for row in x.data().chunks(cols) {
            rev_data.extend(row.iter().rev());
        }
        let p_rev = softmax_rows(&Tensor::from_vec(&[rows, cols], rev_data));
        for (row_p, row_r) in p.data().chunks(cols).zip(p_rev.data().chunks(cols)) {
            for (a, b) in row_p.iter().zip(row_r.iter().rev()) {
                prop_assert!(
                    (a - b).abs() <= ulp_bound,
                    "permutation equivariance broken: {a} vs {b}"
                );
            }
        }
    }

    /// With `V = I`, the attention output *is* the softmax weight matrix
    /// — bitwise: multiplying by identity adds only exact `+0.0` terms.
    #[test]
    fn identity_value_matrix_exposes_softmax_weights(
        s in 64usize..96,
        d in 8usize..24,
        seed in 1u64..1_000_000,
    ) {
        let q = Tensor::from_vec(&[s, d], fill(s * d, seed));
        let k = Tensor::from_vec(&[s, d], fill(s * d, seed ^ 0xbeef));
        let mut eye = Tensor::zeros(&[s, s]);
        for i in 0..s {
            eye.data_mut()[i * s + i] = 1.0;
        }
        let scale = attention_scale(d);
        let got = attention_unfused(&q, &k, &eye, scale, false);
        // The expected weights, via the same public kernels.
        let mut scores = trident_nn::linalg::matmul(&q, &k.transposed());
        for v in scores.data_mut() {
            *v *= scale;
        }
        let expected = softmax_rows(&scores);
        prop_assert_eq!(bits_of(got.data()), bits_of(expected.data()));
    }

    /// Fused (arena) attention is bitwise identical to the straight-line
    /// unfused oracle, causal and not, at 1, 2 and 8 threads.
    #[test]
    fn fused_matches_unfused_bitwise_across_thread_counts(
        s_q in 64usize..96,
        extra_k in 0usize..16,
        d in 8usize..24,
        causal_bit in 0u8..2,
        seed in 1u64..1_000_000,
    ) {
        let _guard = override_lock();
        let causal = causal_bit == 1;
        let s_k = s_q + extra_k;
        let q = Tensor::from_vec(&[s_q, d], fill(s_q * d, seed));
        let k = Tensor::from_vec(&[s_k, d], fill(s_k * d, seed ^ 0x5a5a));
        let v = Tensor::from_vec(&[s_k, d], fill(s_k * d, seed ^ 0xc3c3));
        let scale = attention_scale(d);
        pool::set_thread_override(Some(1));
        let reference = bits_of(attention_unfused(&q, &k, &v, scale, causal).data());
        for threads in [1usize, 2, 8] {
            pool::set_thread_override(Some(threads));
            let mut arena = TensorArena::new();
            let mut out = Tensor::zeros(&[s_q, d]);
            attention_fused_into(&q, &k, &v, scale, causal, &mut arena, &mut out);
            prop_assert_eq!(
                &bits_of(out.data()),
                &reference,
                "fused diverged from unfused at threads={}", threads
            );
            let unfused = attention_unfused(&q, &k, &v, scale, causal);
            prop_assert_eq!(
                &bits_of(unfused.data()),
                &reference,
                "unfused not thread-stable at threads={}", threads
            );
        }
        pool::set_thread_override(None);
    }
}
