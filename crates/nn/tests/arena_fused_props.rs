//! Property tests for the zero-alloc serving path (ISSUE 9): the fused
//! `matmul_bias_act` kernel and the arena-backed network forward must be
//! bitwise identical to the unfused, allocating path at 1, 2 and 8
//! threads, and a warmed arena must reuse its slabs — two identical
//! consecutive batches leave the high-water mark and the heap-growth
//! counter unchanged.
//!
//! The thread override is process-global, so every case holds
//! `OVERRIDE_LOCK` for its whole body — `#[test]` functions in one binary
//! run concurrently.

use proptest::prelude::*;
use rayon::pool;
use std::sync::{Mutex, MutexGuard, OnceLock};
use trident_nn::linalg;
use trident_nn::{Activation, ActivationLayer, Dense, Sequential, Tensor, TensorArena};

fn override_lock() -> MutexGuard<'static, ()> {
    static OVERRIDE_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match OVERRIDE_LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Deterministic, sign-varied f32 fill so additions are order-sensitive
/// in the low mantissa bits.
fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2003) as f32 - 1001.0) / 617.0
        })
        .collect()
}

fn bits_of(data: &[f32]) -> Vec<u32> {
    data.iter().map(|x| x.to_bits()).collect()
}

/// A Dense(+bias)→GstRelu→Dense stack with deterministic weights: the
/// first pair is fusion-eligible, the tail layer is not, so the arena
/// forward exercises both the fused and the plain `try_forward_in` arms.
fn stacked_net(m: usize, k: usize, n: usize, seed: u64) -> Sequential {
    let mut hidden = Dense::from_weights(Tensor::from_vec(&[n, k], fill(n * k, seed))).with_bias();
    if let Some(b) = &mut hidden.bias {
        b.data_mut().copy_from_slice(&fill(n, seed ^ 0xb1a5));
    }
    let out = Dense::from_weights(Tensor::from_vec(&[m, n], fill(m * n, seed ^ 0x0707)));
    Sequential::new()
        .push(hidden)
        .push(ActivationLayer::new(Activation::GstRelu { threshold: 0.1, slope: 1.2 }))
        .push(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fused `act(A·B + bias)` vs the unfused allocating sequence
    /// (`matmul` → row-wise bias add → `map(act)`), bitwise, at every
    /// thread count. Sizes straddle `PAR_THRESHOLD` so both the
    /// sequential and the parallel blocked path get hit.
    #[test]
    fn fused_matmul_bias_act_bitwise_matches_unfused(
        m in 4usize..24,
        k in 4usize..40,
        n in 4usize..24,
        seed in 1u64..1_000_000,
    ) {
        let _guard = override_lock();
        let a = Tensor::from_vec(&[m, k], fill(m * k, seed));
        let b = Tensor::from_vec(&[k, n], fill(k * n, seed ^ 0xabcd));
        let bias = fill(n, seed ^ 0x5eed);
        let act = Activation::GstRelu { threshold: 0.05, slope: 0.34 };
        for threads in [1usize, 2, 8] {
            pool::set_thread_override(Some(threads));
            let mut h = linalg::matmul(&a, &b);
            for row in h.data_mut().chunks_exact_mut(n) {
                for (v, bj) in row.iter_mut().zip(&bias) {
                    *v += bj;
                }
            }
            let unfused = h.map(|v| act.forward(v));
            let mut fused = Tensor::zeros(&[m, n]);
            linalg::matmul_bias_act_into(&a, &b, Some(&bias), |v| act.forward(v), &mut fused);
            prop_assert_eq!(
                bits_of(fused.data()),
                bits_of(unfused.data()),
                "threads={}", threads
            );
        }
        pool::set_thread_override(None);
    }

    /// The arena-backed network forward (fused Dense→Activation included)
    /// vs the allocating `try_forward`, bitwise, at every thread count.
    #[test]
    fn arena_forward_bitwise_matches_allocating_forward(
        m in 1usize..12,
        k in 4usize..32,
        n in 4usize..24,
        seed in 1u64..1_000_000,
    ) {
        let _guard = override_lock();
        let x = Tensor::from_vec(&[m, k], fill(m * k, seed ^ 0x77));
        for threads in [1usize, 2, 8] {
            pool::set_thread_override(Some(threads));
            let mut net = stacked_net(m, k, n, seed);
            let reference = net.try_forward(&x).expect("allocating forward");
            let mut arena = TensorArena::new();
            let out = net.try_forward_in(&x, &mut arena).expect("arena forward");
            prop_assert_eq!(
                bits_of(out.data()),
                bits_of(reference.data()),
                "threads={}", threads
            );
            arena.give(out);
            arena.reset();
        }
        pool::set_thread_override(None);
    }

    /// Arena reuse invariant: after a warm-up batch, running the same
    /// batch again checks the same slabs back out — no heap growth, no
    /// new high-water mark, and no change in bytes checked out at peak.
    #[test]
    fn arena_high_water_is_stable_across_identical_batches(
        m in 1usize..12,
        k in 4usize..32,
        n in 4usize..24,
        seed in 1u64..1_000_000,
    ) {
        let _guard = override_lock();
        let x = Tensor::from_vec(&[m, k], fill(m * k, seed ^ 0x99));
        let mut net = stacked_net(m, k, n, seed);
        let mut arena = TensorArena::new();
        // Warm-up batch: slab growth here is expected and uncounted debt.
        let out = net.try_forward_in(&x, &mut arena).expect("warm-up forward");
        arena.give(out);
        arena.reset();
        let warm_high_water = arena.high_water_bytes();
        let warm_allocs = arena.heap_allocs();
        for batch in 0..3 {
            let out = net.try_forward_in(&x, &mut arena).expect("steady-state forward");
            arena.give(out);
            arena.reset();
            prop_assert_eq!(
                arena.high_water_bytes(), warm_high_water,
                "batch {} grew the high-water mark", batch
            );
            prop_assert_eq!(
                arena.heap_allocs(), warm_allocs,
                "batch {} allocated on the steady-state path", batch
            );
        }
    }
}
