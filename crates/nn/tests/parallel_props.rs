//! Property tests for executor determinism at the linalg layer (ISSUE 4):
//! `matmul`, `matvec` and `outer` must be bitwise identical at 1, 2 and 8
//! threads. Sizes are drawn above `PAR_THRESHOLD` so the parallel blocked
//! paths genuinely run; the 1-thread pass pins the sequential reference.
//!
//! The thread override is process-global, so every case holds
//! `OVERRIDE_LOCK` for its whole body — `#[test]` functions in one binary
//! run concurrently.

use proptest::prelude::*;
use rayon::pool;
use std::sync::{Mutex, MutexGuard, OnceLock};
use trident_nn::linalg::{matmul, matvec, outer};
use trident_nn::tensor::Tensor;

fn override_lock() -> MutexGuard<'static, ()> {
    static OVERRIDE_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match OVERRIDE_LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Deterministic, sign-varied f32 fill so additions are order-sensitive
/// in the low mantissa bits.
fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2003) as f32 - 1001.0) / 617.0
        })
        .collect()
}

fn bits_of(data: &[f32]) -> Vec<u32> {
    data.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn matmul_bitwise_identical_across_thread_counts(
        m in 16usize..40,
        k in 16usize..40,
        n in 16usize..40,
        seed in 1u64..1_000_000,
    ) {
        let _guard = override_lock();
        let a = Tensor::from_vec(&[m, k], fill(m * k, seed));
        let b = Tensor::from_vec(&[k, n], fill(k * n, seed ^ 0xabcd));
        pool::set_thread_override(Some(1));
        let reference = bits_of(matmul(&a, &b).data());
        for threads in [2usize, 8] {
            pool::set_thread_override(Some(threads));
            prop_assert_eq!(
                &bits_of(matmul(&a, &b).data()),
                &reference,
                "threads={}", threads
            );
        }
        pool::set_thread_override(None);
    }

    #[test]
    fn matvec_bitwise_identical_across_thread_counts(
        m in 64usize..128,
        k in 64usize..128,
        seed in 1u64..1_000_000,
    ) {
        let _guard = override_lock();
        let a = Tensor::from_vec(&[m, k], fill(m * k, seed));
        let x = fill(k, seed ^ 0x1234);
        pool::set_thread_override(Some(1));
        let reference = bits_of(&matvec(&a, &x));
        for threads in [2usize, 8] {
            pool::set_thread_override(Some(threads));
            prop_assert_eq!(&bits_of(&matvec(&a, &x)), &reference, "threads={}", threads);
        }
        pool::set_thread_override(None);
    }

    #[test]
    fn outer_bitwise_identical_across_thread_counts(
        m in 64usize..128,
        n in 64usize..128,
        seed in 1u64..1_000_000,
    ) {
        let _guard = override_lock();
        let u = fill(m, seed);
        let v = fill(n, seed ^ 0x7777);
        pool::set_thread_override(Some(1));
        let reference = bits_of(outer(&u, &v).data());
        for threads in [2usize, 8] {
            pool::set_thread_override(Some(threads));
            prop_assert_eq!(&bits_of(outer(&u, &v).data()), &reference, "threads={}", threads);
        }
        pool::set_thread_override(None);
    }
}
