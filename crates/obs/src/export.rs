//! Exporters: human summary, stable JSON, and `chrome://tracing` JSON.
//!
//! All three read an immutable [`ObsSnapshot`], so exporting never races
//! live instrumentation. Output is deterministic for a given snapshot:
//! counters print in declaration order and events in ring order, with no
//! timestamps or hostnames injected by the exporter itself.
//!
//! The chrome-trace format emits one complete (`"ph": "X"`) slice per
//! span — loadable directly in Perfetto (ui.perfetto.dev) or
//! `chrome://tracing` — plus one counter (`"ph": "C"`) sample per
//! non-zero counter so the PCM/photonics tallies chart alongside the
//! timeline. Timestamps are microseconds with nanosecond precision, per
//! the trace-event spec.

use crate::counter::lossy_f64;
use crate::ObsSnapshot;
use std::fmt::Write as _;

/// Escape a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with nanosecond precision, as chrome-trace expects.
fn us(ns: u64) -> String {
    format!("{:.3}", lossy_f64(ns) / 1000.0)
}

/// A short human-readable roll-up: every non-zero counter plus the span
/// population and overflow accounting.
pub fn human_summary(snap: &ObsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("== obs summary ==\n");
    let mut any = false;
    for (key, value) in snap.counters.iter_nonzero() {
        any = true;
        let _ = writeln!(out, "  {key:<28} {value:>16}");
    }
    if !any {
        out.push_str("  (no counters recorded)\n");
    }
    let _ = writeln!(
        out,
        "  spans recorded {} / dropped {}",
        snap.events.len(),
        snap.dropped_events
    );
    out
}

/// Stable machine-readable JSON: schema, overflow tally, every counter
/// (zeros included, so consumers need no key probing), and the events.
pub fn to_json(snap: &ObsSnapshot) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n");
    let _ = writeln!(out, "  \"dropped_events\": {},", snap.dropped_events);
    out.push_str("  \"counters\": {\n");
    let counters: Vec<String> = snap
        .counters
        .iter_all()
        .map(|(key, value)| format!("    \"{key}\": {value}"))
        .collect();
    out.push_str(&counters.join(",\n"));
    out.push_str("\n  },\n  \"events\": [\n");
    let events: Vec<String> = snap
        .events
        .iter()
        .map(|e| {
            format!(
                "    {{\"name\": \"{}\", \"start_ns\": {}, \"dur_ns\": {}, \"tid\": {}, \"depth\": {}}}",
                escape(&e.name),
                e.start_ns,
                e.dur_ns,
                e.tid,
                e.depth
            )
        })
        .collect();
    out.push_str(&events.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Chrome trace-event JSON (the Perfetto import format).
pub fn to_chrome_trace(snap: &ObsSnapshot) -> String {
    let mut entries: Vec<String> = Vec::with_capacity(snap.events.len() + 8);
    entries.push(
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \
         \"args\": {\"name\": \"trident\"}}"
            .to_string(),
    );
    for e in &snap.events {
        entries.push(format!(
            "{{\"name\": \"{}\", \"cat\": \"trident\", \"ph\": \"X\", \"ts\": {}, \
             \"dur\": {}, \"pid\": 1, \"tid\": {}}}",
            escape(&e.name),
            us(e.start_ns),
            us(e.dur_ns),
            e.tid
        ));
    }
    // One counter sample per non-zero counter, stamped after the last
    // span so the track shows the final tally.
    let end_ns = snap
        .events
        .iter()
        .map(|e| e.start_ns.saturating_add(e.dur_ns))
        .max()
        .unwrap_or(0);
    for (key, value) in snap.counters.iter_nonzero() {
        entries.push(format!(
            "{{\"name\": \"{key}\", \"ph\": \"C\", \"ts\": {}, \"pid\": 1, \
             \"args\": {{\"value\": {value}}}}}",
            us(end_ns)
        ));
    }
    if snap.dropped_events > 0 {
        entries.push(format!(
            "{{\"name\": \"obs.dropped_events\", \"ph\": \"C\", \"ts\": {}, \"pid\": 1, \
             \"args\": {{\"value\": {}}}}}",
            us(end_ns),
            snap.dropped_events
        ));
    }
    format!(
        "{{\"traceEvents\": [\n{}\n], \"displayTimeUnit\": \"ns\"}}\n",
        entries.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{Counter, CounterSnapshot};
    use crate::span::Event;
    use std::borrow::Cow;

    fn sample() -> ObsSnapshot {
        let mut values = [0u64; Counter::COUNT];
        values[Counter::MacOps as usize] = 512;
        values[Counter::PcmWriteFj as usize] = 660_000;
        ObsSnapshot {
            counters: CounterSnapshot::from_values(values),
            events: vec![
                Event {
                    name: Cow::Borrowed("forward"),
                    start_ns: 1_000,
                    dur_ns: 2_500,
                    tid: 0,
                    depth: 0,
                },
                Event {
                    name: Cow::Owned("forward.layer0".to_string()),
                    start_ns: 1_100,
                    dur_ns: 900,
                    tid: 0,
                    depth: 1,
                },
            ],
            dropped_events: 3,
        }
    }

    #[test]
    fn summary_lists_nonzero_counters_and_overflow() {
        let s = human_summary(&sample());
        assert!(s.contains("mac_ops"));
        assert!(s.contains("512"));
        assert!(s.contains("dropped 3"));
        assert!(!s.contains("pcm_reads"), "zero counters stay out of the summary");
    }

    #[test]
    fn json_is_stable_and_complete() {
        let a = to_json(&sample());
        let b = to_json(&sample());
        assert_eq!(a, b, "export must be deterministic");
        assert!(a.contains("\"mac_ops\": 512"));
        assert!(a.contains("\"pcm_reads\": 0"), "JSON includes zero counters");
        assert!(a.contains("\"dropped_events\": 3"));
        assert!(a.contains("forward.layer0"));
    }

    #[test]
    fn chrome_trace_has_complete_slices_and_counter_samples() {
        let t = to_chrome_trace(&sample());
        assert!(t.starts_with("{\"traceEvents\": ["));
        assert!(t.contains("\"ph\": \"X\""));
        assert!(t.contains("\"ts\": 1.000"), "ns → us conversion");
        assert!(t.contains("\"dur\": 2.500"));
        assert!(t.contains("\"ph\": \"C\""));
        assert!(t.contains("obs.dropped_events"));
        // Balanced braces/brackets — a cheap well-formedness check.
        let opens = t.matches('{').count();
        let closes = t.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(t.matches('[').count(), t.matches(']').count());
    }

    #[test]
    fn names_are_escaped() {
        let mut snap = sample();
        snap.events[0].name = Cow::Owned("weird\"name\\with\nstuff".to_string());
        let j = to_json(&snap);
        assert!(j.contains("weird\\\"name\\\\with\\nstuff"));
    }
}
