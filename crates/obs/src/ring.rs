//! The bounded event store.
//!
//! A fixed-capacity buffer of completed span events behind one short
//! critical section ("lock-free-enough": the hot path — counters — is
//! pure atomics; span completion takes an uncontended `Mutex` for a
//! `Vec::push`). When the buffer fills, new events are **counted, not
//! silently dropped**: the overflow tally lives next to the events and
//! travels with every snapshot, so an exporter can always report exactly
//! how much of the run it did not see. Keep-first semantics preserve the
//! head of the trace (initialization and the first iterations), which is
//! where layer structure is most legible.

use crate::span::Event;
use std::sync::Mutex;

/// Default event capacity when `TRIDENT_TRACE_CAP` is unset.
pub const DEFAULT_CAPACITY: usize = 65_536;

struct RingInner {
    events: Vec<Event>,
    dropped: u64,
}

/// Fixed-capacity event buffer with overflow accounting.
pub struct EventRing {
    capacity: usize,
    inner: Mutex<RingInner>,
}

/// Lock, riding out poisoning: a panicking span holder cannot leave the
/// event vector in a torn state (push is the only mutation), so the
/// guard is always safe to recover.
fn lock(inner: &Mutex<RingInner>) -> std::sync::MutexGuard<'_, RingInner> {
    match inner.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl EventRing {
    /// An empty ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(RingInner { events: Vec::new(), dropped: 0 }),
        }
    }

    /// Maximum number of events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one event. Returns `false` when the ring was full and the
    /// event was tallied into the overflow count instead.
    pub fn push(&self, event: Event) -> bool {
        let mut inner = lock(&self.inner);
        if inner.events.len() < self.capacity {
            inner.events.push(event);
            true
        } else {
            inner.dropped += 1;
            false
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        lock(&self.inner).events.len()
    }

    /// True when no event has been recorded (dropped ones included).
    pub fn is_empty(&self) -> bool {
        let inner = lock(&self.inner);
        inner.events.is_empty() && inner.dropped == 0
    }

    /// Events that arrived after the ring was full.
    pub fn dropped(&self) -> u64 {
        lock(&self.inner).dropped
    }

    /// Copy out the retained events and the overflow tally.
    pub fn snapshot(&self) -> (Vec<Event>, u64) {
        let inner = lock(&self.inner);
        (inner.events.clone(), inner.dropped)
    }

    /// Clear the ring and the overflow tally.
    pub fn reset(&self) {
        let mut inner = lock(&self.inner);
        inner.events.clear();
        inner.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn ev(name: &'static str) -> Event {
        Event { name: Cow::Borrowed(name), start_ns: 0, dur_ns: 1, tid: 0, depth: 0 }
    }

    #[test]
    fn fills_then_counts_overflow() {
        let ring = EventRing::new(3);
        for _ in 0..5 {
            ring.push(ev("x"));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let (events, dropped) = ring.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(dropped, 2);
    }

    #[test]
    fn reset_clears_everything() {
        let ring = EventRing::new(1);
        ring.push(ev("a"));
        ring.push(ev("b"));
        ring.reset();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = EventRing::new(0);
        assert_eq!(ring.capacity(), 1);
        assert!(ring.push(ev("kept")));
        assert!(!ring.push(ev("counted")));
    }
}
