//! Lock-free mergeable latency histogram with fixed log-spaced buckets.
//!
//! The serving layer needs tail percentiles (p50/p99/p999) over request
//! latencies that are (a) recordable from any thread without locks,
//! (b) mergeable across replicas/shards with the same algebra the
//! [`CounterSnapshot`](crate::counter::CounterSnapshot) uses — wrapping
//! `u64` addition, so merge is total, associative, and commutative by
//! construction — and (c) bitwise deterministic: every operation is
//! integer arithmetic on nanosecond counts, so a report built from a
//! histogram is byte-identical at any thread count.
//!
//! ## Bucket scheme
//!
//! Buckets are **fixed at compile time** (no dynamic resizing, no
//! rebucketing on merge): values 0–3 ns get exact singleton buckets, and
//! every octave `[2^e, 2^(e+1))` above that is split into 4 sub-buckets
//! by the two mantissa bits below the leading bit. That bounds the
//! relative quantile error at ~12.5% per bucket while covering the full
//! `u64` range (584 years in nanoseconds) in [`BUCKETS`] slots.
//! Quantile estimates return the **inclusive upper bound** of the bucket
//! containing the requested rank, so estimates are monotone in the rank
//! and never under-report a latency SLO violation.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave (2 mantissa bits).
const SUBS: u64 = 4;

/// Number of histogram buckets: 4 exact singletons for 0–3, then 4
/// sub-buckets for each octave `2^2 ..= 2^63`. Indices 4–7 are unused by
/// construction (octave 2 starts at index 8) and always hold zero.
pub const BUCKETS: usize = 256;

/// Bucket index of a nanosecond value. Total over all of `u64`.
fn bucket_index_of_ns(ns: u64) -> usize {
    if ns < SUBS {
        // try_from(u64 -> usize) cannot fail for values < 4; the
        // fallback keeps this branch panic-free by construction.
        return usize::try_from(ns).unwrap_or(0);
    }
    // Exponent of the leading bit (>= 2 here) and the two bits below it.
    let e = u64::from(63 - ns.leading_zeros());
    let mantissa = (ns >> (e - 2)) & (SUBS - 1);
    usize::try_from(SUBS * e + mantissa).unwrap_or(BUCKETS - 1)
}

/// Inclusive `(lower_ns, upper_ns)` bounds of one bucket. The unused
/// indices 4–7 report exact singleton bounds so the bound table stays
/// total and contiguous.
pub fn bucket_bounds_ns(index: usize) -> (u64, u64) {
    let i = u64::try_from(index.min(BUCKETS - 1)).unwrap_or(0);
    if i < 2 * SUBS {
        return (i, i);
    }
    let e = i / SUBS;
    let mantissa = i % SUBS;
    let width = 1u64 << (e - 2);
    let lower = (SUBS + mantissa) << (e - 2);
    (lower, lower.wrapping_add(width).wrapping_sub(1))
}

/// Lock-free live histogram: one atomic counter per bucket.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    /// Record one nanosecond observation (wrapping on overflow).
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index_of_ns(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every bucket.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    /// Reset every bucket to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// An immutable copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: [u64; BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self::zero()
    }
}

impl HistSnapshot {
    /// The empty snapshot (the merge identity).
    pub fn zero() -> Self {
        Self { buckets: [0; BUCKETS] }
    }

    /// Build from explicit bucket counts (test support).
    pub fn from_buckets(buckets: [u64; BUCKETS]) -> Self {
        Self { buckets }
    }

    /// Count in one bucket.
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index.min(BUCKETS - 1)]
    }

    /// Total recorded observations (wrapping sum, consistent with the
    /// wrapping per-bucket merge).
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |acc, &b| acc.wrapping_add(b))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// Merge another snapshot into this one, bucket by bucket. Wrapping
    /// `u64` addition — the same algebra as
    /// [`CounterSnapshot::merge`](crate::counter::CounterSnapshot::merge),
    /// so the merge is total, associative, and commutative (pinned by the
    /// histogram proptests).
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            buckets: std::array::from_fn(|i| {
                self.buckets[i].wrapping_add(other.buckets[i])
            }),
        }
    }

    /// Upper-bound estimate of the `numer/denom` quantile in nanoseconds
    /// (e.g. `(50, 100)` for p50, `(999, 1000)` for p999): the inclusive
    /// upper bound of the bucket holding the rank-`ceil(count·q)`
    /// observation. Pure integer arithmetic (ranks computed in `u128`),
    /// so estimates are deterministic and monotone in the quantile.
    /// Returns 0 for an empty histogram or a zero quantile.
    pub fn quantile_upper_ns(&self, numer: u64, denom: u64) -> u64 {
        let total = self.count();
        if total == 0 || numer == 0 || denom == 0 {
            return 0;
        }
        // rank = ceil(total * numer / denom), clamped into [1, total].
        let product = u128::from(total) * u128::from(numer);
        let rank128 = product.div_ceil(u128::from(denom));
        let rank = u64::try_from(rank128).unwrap_or(u64::MAX).clamp(1, total);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen = seen.wrapping_add(b);
            if seen >= rank {
                return bucket_bounds_ns(i).1;
            }
        }
        // Unreachable when counts did not wrap; degrade to the max bound.
        bucket_bounds_ns(BUCKETS - 1).1
    }

    /// Upper bound of the highest non-empty bucket (an approximate max).
    pub fn max_upper_ns(&self) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &b)| b != 0)
            .map(|(i, _)| bucket_bounds_ns(i).1)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..4u64 {
            let (lo, hi) = bucket_bounds_ns(bucket_index_of_ns(v));
            assert_eq!((lo, hi), (v, v));
        }
    }

    #[test]
    fn every_value_lands_inside_its_bucket_bounds() {
        for &v in &[0u64, 1, 3, 4, 5, 7, 8, 100, 999, 1_000_000, u64::MAX / 3, u64::MAX] {
            let idx = bucket_index_of_ns(v);
            let (lo, hi) = bucket_bounds_ns(idx);
            assert!(lo <= v && v <= hi, "value {v} outside bucket {idx} [{lo}, {hi}]");
        }
    }

    #[test]
    fn bucket_bounds_tile_the_line() {
        // Consecutive *used* buckets are contiguous: each upper + 1 is
        // the next used bucket's lower.
        let used: Vec<usize> =
            (0..BUCKETS).filter(|&i| !(4..8).contains(&i)).collect();
        for pair in used.windows(2) {
            let (_, hi) = bucket_bounds_ns(pair[0]);
            let (lo, _) = bucket_bounds_ns(pair[1]);
            assert_eq!(hi.wrapping_add(1), lo, "gap between buckets {} and {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn record_and_quantiles_round_trip() {
        let h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record_ns(v * 1000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        let p50 = snap.quantile_upper_ns(50, 100);
        let p99 = snap.quantile_upper_ns(99, 100);
        // Upper-bound estimates: never below the true quantile, within
        // one bucket width (~12.5%) above it.
        assert!((50_000..=57_500).contains(&p50), "p50 {p50}");
        assert!((99_000..=114_687).contains(&p99), "p99 {p99}");
        assert!(snap.quantile_upper_ns(999, 1000) >= p99);
        assert!(snap.max_upper_ns() >= 100_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let snap = HistSnapshot::zero();
        assert!(snap.is_empty());
        assert_eq!(snap.quantile_upper_ns(99, 100), 0);
        assert_eq!(snap.max_upper_ns(), 0);
    }

    #[test]
    fn merge_adds_bucket_counts() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record_ns(10);
        a.record_ns(1000);
        b.record_ns(10);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.bucket(bucket_index_of_ns(10)), 2);
    }

    #[test]
    fn reset_clears() {
        let h = LatencyHistogram::new();
        h.record_ns(42);
        h.reset();
        assert!(h.snapshot().is_empty());
    }
}
