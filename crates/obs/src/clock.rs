//! Time sources for span timestamps.
//!
//! The recorder never calls `Instant::now` directly: it reads whatever
//! [`Clock`] it was constructed with, so tests can install a
//! [`ManualClock`] and get fully deterministic event timestamps while
//! production uses a [`MonotonicClock`] anchored at recorder creation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's origin. Must never decrease.
    fn now_ns(&self) -> u64;
}

/// Wall-clock time since construction (`std::time::Instant`).
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        Self { origin: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturate rather than wrap: a process does not live 584 years.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-cranked clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ns: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `delta_ns` nanoseconds.
    pub fn advance_ns(&self, delta_ns: u64) {
        self.now_ns.fetch_add(delta_ns, Ordering::Relaxed);
    }

    /// Jump the clock to an absolute reading (monotonicity is the test's
    /// responsibility).
    pub fn set_ns(&self, now_ns: u64) {
        self.now_ns.store(now_ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_scriptable() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance_ns(250);
        assert_eq!(c.now_ns(), 250);
        c.set_ns(1_000);
        assert_eq!(c.now_ns(), 1_000);
    }
}
