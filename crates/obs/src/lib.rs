//! # trident-obs
//!
//! Dependency-free observability for the Trident reproduction:
//! hierarchical [`span::SpanGuard`] spans with an injected [`clock::Clock`]
//! (deterministic in tests), typed [`counter::Counter`] tallies for the
//! quantities the model already tracks (MAC ops, PCM write/read energy,
//! ring tuning, fault masking, executor statistics), a bounded
//! [`ring::EventRing`] with overflow accounting, and three exporters
//! (human summary, stable JSON, chrome-trace for Perfetto).
//!
//! ## The off switch is the contract
//!
//! Instrumentation call sites throughout the workspace go through the
//! free functions here ([`span`], [`add`], [`add_pj`], …), which check
//! [`enabled`] first — one relaxed atomic load — and do nothing when
//! tracing is off. Tracing is **off by default** and enabled by setting
//! `TRIDENT_TRACE=1` (or programmatically via [`set_enabled_override`],
//! which tests use because the env var is read once per process).
//! Observation never feeds back into model arithmetic, so table and
//! figure outputs are byte-identical with tracing on or off — a property
//! `tests/determinism_trace.rs` pins.
//!
//! ## Quick use
//!
//! ```
//! use trident_obs as obs;
//!
//! obs::set_enabled_override(Some(true));
//! {
//!     let _span = obs::span("demo.work");
//!     obs::add(obs::Counter::MacOps, 256);
//! }
//! let snap = obs::snapshot();
//! assert_eq!(snap.counters.get(obs::Counter::MacOps), 256);
//! println!("{}", obs::export::human_summary(&snap));
//! obs::reset();
//! obs::set_enabled_override(None);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_lossless))]

pub mod clock;
pub mod counter;
pub mod export;
pub mod hist;
pub mod ring;
pub mod span;

pub use counter::{Counter, CounterSet, CounterSnapshot};
pub use hist::{HistSnapshot, LatencyHistogram};
pub use span::{current_depth, Event, SpanGuard};

use clock::{Clock, MonotonicClock};
use ring::EventRing;
use std::borrow::Cow;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

/// A self-contained recorder: counters + event ring + clock. The process
/// global returned by [`global`] is one of these; tests build their own
/// (with a [`clock::ManualClock`]) for deterministic timestamps.
pub struct Recorder {
    counters: CounterSet,
    ring: EventRing,
    clock: Arc<dyn Clock>,
}

impl Recorder {
    /// A recorder holding at most `capacity` events, timed by `clock`.
    pub fn new(capacity: usize, clock: Arc<dyn Clock>) -> Self {
        Self { counters: CounterSet::new(), ring: EventRing::new(capacity), clock }
    }

    /// A recorder on the wall clock.
    pub fn monotonic(capacity: usize) -> Self {
        Self::new(capacity, Arc::new(MonotonicClock::new()))
    }

    /// Begin a span with a static label.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard::begin(self, Cow::Borrowed(name))
    }

    /// Begin a span with an owned label (per-layer names etc.). Callers
    /// on hot paths should only format the label when tracing is on.
    pub fn span_owned(&self, name: String) -> SpanGuard<'_> {
        SpanGuard::begin(self, Cow::Owned(name))
    }

    /// The live counters.
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// The event ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// Current clock reading, nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// A point-in-time copy of counters, events, and overflow tally.
    pub fn snapshot(&self) -> ObsSnapshot {
        let (events, dropped_events) = self.ring.snapshot();
        ObsSnapshot { counters: self.counters.snapshot(), events, dropped_events }
    }

    /// Clear counters, events, and the overflow tally.
    pub fn reset(&self) {
        self.counters.reset();
        self.ring.reset();
    }
}

/// An immutable copy of everything a recorder observed.
#[derive(Debug, Clone)]
pub struct ObsSnapshot {
    /// Counter values at snapshot time.
    pub counters: CounterSnapshot,
    /// Completed spans, in completion order.
    pub events: Vec<Event>,
    /// Events that arrived after the ring filled (never silently lost).
    pub dropped_events: u64,
}

/// `TRIDENT_TRACE` truthiness, read once per process.
fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("TRIDENT_TRACE")
            .map(|v| {
                let v = v.trim();
                !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false"))
            })
            .unwrap_or(false)
    })
}

/// Event capacity for the global recorder (`TRIDENT_TRACE_CAP`, default
/// [`ring::DEFAULT_CAPACITY`]).
fn env_capacity() -> usize {
    std::env::var("TRIDENT_TRACE_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(ring::DEFAULT_CAPACITY)
}

/// Programmatic override of the `TRIDENT_TRACE` switch:
/// 0 = defer to env, 1 = forced off, 2 = forced on.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Whether instrumentation is live. The off path is one relaxed atomic
/// load (plus a lazily-initialized env read the first time).
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => env_enabled(),
    }
}

/// Force tracing on or off regardless of `TRIDENT_TRACE` (`None` defers
/// back to the environment). Process-global — tests that flip it should
/// run in one `#[test]` or serialize themselves, like the executor's
/// thread override.
pub fn set_enabled_override(forced: Option<bool>) {
    OVERRIDE.store(forced.map_or(0, |on| if on { 2 } else { 1 }), Ordering::Relaxed);
}

/// The process-global recorder (wall clock, env-sized ring).
pub fn global() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(|| Recorder::monotonic(env_capacity()))
}

/// Begin a global span with a static label (inert when tracing is off).
pub fn span(name: &'static str) -> SpanGuard<'static> {
    if enabled() {
        global().span(name)
    } else {
        SpanGuard::disabled()
    }
}

/// Begin a global span with an owned label (inert when tracing is off).
/// Prefer `if obs::enabled() { … }` around the `format!` at call sites so
/// the off path allocates nothing.
pub fn span_owned(name: String) -> SpanGuard<'static> {
    if enabled() {
        global().span_owned(name)
    } else {
        SpanGuard::disabled()
    }
}

/// Accumulate `n` into a global sum counter (no-op when tracing is off).
pub fn add(counter: Counter, n: u64) {
    if enabled() {
        global().counters().add(counter, n);
    }
}

/// Accumulate a picojoule energy into a femtojoule counter (no-op when
/// tracing is off; negative/non-finite inputs tally zero).
pub fn add_pj(counter: Counter, pj: f64) {
    if enabled() {
        global().counters().add(counter, counter::fj_from_pj(pj));
    }
}

/// Accumulate a (simulated) nanosecond latency into a counter (no-op
/// when tracing is off).
pub fn add_sim_ns(counter: Counter, ns: f64) {
    if enabled() {
        global().counters().add(counter, counter::ns_from_ns_f64(ns));
    }
}

/// Store an absolute gauge value (no-op when tracing is off).
pub fn store(counter: Counter, value: u64) {
    if enabled() {
        global().counters().store(counter, value);
    }
}

/// Raise a high-water gauge to `value` if it is below it (no-op when
/// tracing is off).
pub fn store_max(counter: Counter, value: u64) {
    if enabled() {
        global().counters().store_max(counter, value);
    }
}

/// Snapshot the global recorder.
pub fn snapshot() -> ObsSnapshot {
    global().snapshot()
}

/// Reset the global recorder (tests and long-lived servers).
pub fn reset() {
    global().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enabled override and the global recorder are process-global, so
    // everything lives in one #[test] — the determinism-test pattern.
    #[test]
    fn global_gate_and_recorder_round_trip() {
        // Default (no env in the test runner): disabled, and every entry
        // point is a no-op.
        set_enabled_override(None);
        if !enabled() {
            add(Counter::MacOps, 5);
            let g = span("ignored");
            assert!(!g.is_active());
            drop(g);
            assert!(snapshot().counters.is_zero());
            assert!(snapshot().events.is_empty());
        }

        // Forced on: spans and counters land in the global recorder.
        set_enabled_override(Some(true));
        assert!(enabled());
        {
            let _g = span("covered");
            add(Counter::MacOps, 7);
            add_pj(Counter::PcmWriteFj, 660.0);
            add_sim_ns(Counter::ForwardLayerSimNs, 300.0);
            store(Counter::ExecutorChunksClaimed, 4);
        }
        let snap = snapshot();
        assert_eq!(snap.counters.get(Counter::MacOps), 7);
        assert_eq!(snap.counters.get(Counter::PcmWriteFj), 660_000);
        assert_eq!(snap.counters.get(Counter::ForwardLayerSimNs), 300);
        assert_eq!(snap.counters.get(Counter::ExecutorChunksClaimed), 4);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].name, "covered");

        // Forced off again: nothing further accumulates.
        set_enabled_override(Some(false));
        add(Counter::MacOps, 100);
        assert_eq!(snapshot().counters.get(Counter::MacOps), 7);

        reset();
        assert!(snapshot().counters.is_zero());
        set_enabled_override(None);
    }
}
