//! Hierarchical spans as RAII guards.
//!
//! A [`SpanGuard`] captures its start timestamp and thread-local nesting
//! depth when created and records one **complete** event (start + dur)
//! when dropped. Recording only finished intervals means the exported
//! trace can never contain an orphan exit or an unmatched begin — the
//! well-formedness property the obs proptests exercise. Depth tracking is
//! thread-local, so concurrently tracing threads cannot corrupt each
//! other's nesting.

use crate::Recorder;
use std::borrow::Cow;
use std::cell::{Cell, OnceCell};
use std::sync::atomic::{AtomicU32, Ordering};

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Span label (static for hot paths, owned for per-layer names).
    pub name: Cow<'static, str>,
    /// Start timestamp, clock nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Small per-thread ordinal (0 = first thread to trace).
    pub tid: u32,
    /// Nesting depth at entry (0 = top level on its thread).
    pub depth: u32,
}

/// Process-wide allocator of small thread ordinals.
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static TID: OnceCell<u32> = const { OnceCell::new() };
}

/// This thread's stable small ordinal (assigned on first use).
pub fn thread_ordinal() -> u32 {
    TID.with(|t| *t.get_or_init(|| NEXT_TID.fetch_add(1, Ordering::Relaxed)))
}

/// This thread's current span nesting depth (0 outside all spans). The
/// obs proptests use this to prove RAII nesting is always well-formed.
pub fn current_depth() -> u32 {
    DEPTH.with(Cell::get)
}

struct ActiveSpan<'a> {
    recorder: &'a Recorder,
    name: Cow<'static, str>,
    start_ns: u64,
    tid: u32,
    depth: u32,
}

/// RAII guard for one span. Dropping it records the completed event; a
/// disabled guard (tracing off) is a no-op carrying no data.
pub struct SpanGuard<'a> {
    active: Option<ActiveSpan<'a>>,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn begin(recorder: &'a Recorder, name: Cow<'static, str>) -> Self {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v.saturating_add(1));
            v
        });
        Self {
            active: Some(ActiveSpan {
                recorder,
                name,
                start_ns: recorder.now_ns(),
                tid: thread_ordinal(),
                depth,
            }),
        }
    }

    /// The inert guard handed out when tracing is off.
    pub fn disabled() -> Self {
        Self { active: None }
    }

    /// Whether this guard will record an event on drop.
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else { return };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let end_ns = span.recorder.now_ns();
        span.recorder.ring().push(Event {
            name: span.name,
            start_ns: span.start_ns,
            dur_ns: end_ns.saturating_sub(span.start_ns),
            tid: span.tid,
            depth: span.depth,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::Recorder;
    use std::sync::Arc;

    #[test]
    fn nested_guards_record_depths_and_durations() {
        let clock = Arc::new(ManualClock::new());
        let rec = Recorder::new(16, clock.clone());
        {
            let _outer = rec.span("outer");
            clock.advance_ns(10);
            {
                let _inner = rec.span("inner");
                clock.advance_ns(5);
            }
            clock.advance_ns(1);
        }
        assert_eq!(current_depth(), 0);
        let snap = rec.snapshot();
        // Inner drops first (RAII), so it is recorded first.
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].name, "inner");
        assert_eq!(snap.events[0].depth, 1);
        assert_eq!(snap.events[0].dur_ns, 5);
        assert_eq!(snap.events[1].name, "outer");
        assert_eq!(snap.events[1].depth, 0);
        assert_eq!(snap.events[1].dur_ns, 16);
    }

    #[test]
    fn disabled_guard_records_nothing() {
        let rec = Recorder::new(16, Arc::new(ManualClock::new()));
        {
            let g = SpanGuard::disabled();
            assert!(!g.is_active());
        }
        assert!(rec.snapshot().events.is_empty());
        assert_eq!(current_depth(), 0);
    }

    #[test]
    fn thread_ordinals_are_stable_per_thread() {
        let a = thread_ordinal();
        let b = thread_ordinal();
        assert_eq!(a, b);
        let other = std::thread::spawn(thread_ordinal).join().expect("thread");
        assert_ne!(a, other);
    }
}
