//! Typed counters for the quantities the Trident model already tracks.
//!
//! Counters come in two flavours sharing one storage array:
//!
//! * **sums** — monotonically accumulated with [`CounterSet::add`]
//!   (MAC ops, PCM pulses, energy tallies);
//! * **gauges** — absolute values stored with [`CounterSet::store`]
//!   (executor statistics mirrored from `rayon::pool::stats`).
//!
//! Energy is tallied in integer **femtojoules** so that merging two
//! snapshots is plain `u64` addition — associative and commutative by
//! construction (a property the proptests pin), which floating-point
//! accumulation could not guarantee. All model energies are ≥ 0.1 pJ
//! (= 100 fJ), so the integerization loses nothing observable.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$doc:meta])* $variant:ident => $key:literal,)+) => {
        /// The fixed set of tracked quantities.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Counter {
            $($(#[$doc])* $variant,)+
        }

        impl Counter {
            /// Every counter, in declaration (and export) order.
            pub const ALL: &'static [Counter] = &[$(Counter::$variant,)+];

            /// Number of counters.
            pub const COUNT: usize = Counter::ALL.len();

            /// The stable export key of this counter.
            pub fn key(self) -> &'static str {
                match self {
                    $(Counter::$variant => $key,)+
                }
            }

            /// Storage-array index of this counter (the enum discriminant —
            /// the one sanctioned discriminant cast, kept here so storage
            /// code never casts).
            pub const fn index(self) -> usize {
                self as usize
            }
        }
    };
}

counters! {
    /// Ring-level multiply-accumulate operations performed optically.
    MacOps => "mac_ops",
    /// GST weight-programming pulse trains issued (open- or closed-loop).
    PcmWrites => "pcm_writes",
    /// Energy of all GST programming pulses, femtojoules.
    PcmWriteFj => "pcm_write_fj",
    /// GST read probe events (per-symbol bank readouts).
    PcmReads => "pcm_reads",
    /// Energy of all GST read probes, femtojoules.
    PcmReadFj => "pcm_read_fj",
    /// Closed-loop program-and-verify pulse attempts (≥ writes).
    PcmVerifyAttempts => "pcm_verify_attempts",
    /// Closed-loop writes that exhausted their retry budget.
    PcmVerifyFailures => "pcm_verify_failures",
    /// Ring thermal/electric tuning hold energy, femtojoules.
    RingTuningFj => "ring_tuning_fj",
    /// Balanced-photodetector readout events.
    DetectorReadouts => "detector_readouts",
    /// TIA amplification events (per-row analog readout).
    TiaAmplifications => "tia_amplifications",
    /// Detector + TIA receiver energy, femtojoules.
    ReceiverFj => "receiver_fj",
    /// Simulated forward-pass latency accumulated per layer, nanoseconds.
    ForwardLayerSimNs => "forward_layer_sim_ns",
    /// Simulated backward-pass latency accumulated per layer, nanoseconds.
    BackwardLayerSimNs => "backward_layer_sim_ns",
    /// Layers forwarded through the photonic engine.
    LayersForwarded => "layers_forwarded",
    /// Dead rings masked out of the optics by the degradation policy.
    FaultMaskEvents => "fault_mask_events",
    /// Cells remapped onto spare rings by wear leveling.
    FaultRemapEvents => "fault_remap_events",
    /// Stuck-at faults injected by fault campaigns.
    FaultInjectEvents => "fault_inject_events",
    /// MAC layers lowered by the weight-stationary dataflow mapper.
    DataflowLayersMapped => "dataflow_layers_mapped",
    /// Weight tiles produced by the dataflow mapper.
    DataflowTilesMapped => "dataflow_tiles_mapped",
    /// Executor regions that ran in parallel (gauge).
    ExecutorParallelRegions => "executor_parallel_regions",
    /// Executor regions that stayed on the calling thread (gauge).
    ExecutorSequentialRegions => "executor_sequential_regions",
    /// Work chunks claimed from the executor's shared counter (gauge).
    ExecutorChunksClaimed => "executor_chunks_claimed",
    /// Scoped worker threads spawned by the executor (gauge).
    ExecutorThreadsSpawned => "executor_threads_spawned",
    /// Statistical-model noise samples drawn (programming + read noise).
    StatNoiseSamples => "stat_noise_samples",
    /// Per-cell drift-factor refreshes after a degradation-clock advance.
    DriftUpdates => "drift_updates",
    /// Reference-column drift-calibration passes.
    CompensationPasses => "compensation_passes",
    /// Optical energy of drift-calibration reference reads, femtojoules.
    CompensationFj => "compensation_fj",
    /// Adaptive-training systematic-error-model updates.
    ErrorModelUpdates => "error_model_updates",
    /// Inference requests admitted by the serving front-end.
    ServeRequests => "serve_requests",
    /// Batches dispatched to fleet replicas by the dynamic batcher.
    ServeBatches => "serve_batches",
    /// Requests shed by deadline-aware admission control.
    ServeShedRequests => "serve_shed_requests",
    /// Served requests that completed after their SLO deadline.
    ServeSloMisses => "serve_slo_misses",
    /// Bytes currently checked out of tensor arenas / engine scratch (gauge).
    ArenaBytesInUse => "arena_bytes_in_use",
    /// High-water mark of arena/scratch bytes across the run (max gauge).
    ArenaHighWater => "arena_high_water",
    /// Heap-growth events on the managed serving hot path (arena slab
    /// growth, engine scratch growth) — zero once the fleet is warm.
    HotPathAllocs => "hot_path_allocs",
    /// KV-cache elements written (K rows + Vᵀ columns programmed into
    /// attention weight banks) during transformer decode.
    KvCacheWrites => "kv_cache_writes",
    /// KV-cache elements read back through attention MVMs during decode.
    KvCacheReads => "kv_cache_reads",
    /// Energy billed to KV-cache programming traffic, femtojoules.
    KvCacheFj => "kv_cache_fj",
    /// Softmax rows executed on the digital LDSU path.
    LdsuSoftmaxRows => "ldsu_softmax_rows",
    /// LayerNorm rows executed on the digital LDSU path.
    LdsuLayerNormRows => "ldsu_layer_norm_rows",
}

/// Convert a picojoule quantity to integer femtojoules, saturating and
/// rounding half-up. Negative or non-finite inputs clamp to zero: obs is
/// an observer, never a validator — bad values are the model's tests'
/// problem, not a reason to panic here.
pub fn fj_from_pj(pj: f64) -> u64 {
    if !pj.is_finite() || pj <= 0.0 {
        return 0;
    }
    let fj = (pj * 1000.0).round();
    if fj >= 1.8446744073709552e19 {
        u64::MAX
    } else {
        fj as u64
    }
}

/// Convert integer nanoseconds-like magnitudes to `f64` for exporters
/// (lossy above 2⁵³; the trace formats tolerate that).
pub fn lossy_f64(n: u64) -> f64 {
    n as f64
}

/// Convert a non-negative `f64` nanosecond quantity to an integer
/// nanosecond count, saturating and rounding (the span/latency tallies).
pub fn ns_from_ns_f64(ns: f64) -> u64 {
    if !ns.is_finite() || ns <= 0.0 {
        return 0;
    }
    let r = ns.round();
    if r >= 1.8446744073709552e19 {
        u64::MAX
    } else {
        r as u64
    }
}

/// Lock-free live counter storage.
#[derive(Debug)]
pub struct CounterSet {
    values: [AtomicU64; Counter::COUNT],
}

impl Default for CounterSet {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterSet {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self { values: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    /// Accumulate `n` into a sum counter (wrapping on overflow).
    pub fn add(&self, counter: Counter, n: u64) {
        self.values[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Store an absolute gauge value.
    pub fn store(&self, counter: Counter, value: u64) {
        self.values[counter.index()].store(value, Ordering::Relaxed);
    }

    /// Raise a gauge to `value` if it is below it (high-water marks).
    pub fn store_max(&self, counter: Counter, value: u64) {
        self.values[counter.index()].fetch_max(value, Ordering::Relaxed);
    }

    /// Current value of one counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.values[counter.index()].load(Ordering::Relaxed)
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        for v in &self.values {
            v.store(0, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            values: std::array::from_fn(|i| self.values[i].load(Ordering::Relaxed)),
        }
    }
}

/// An immutable point-in-time copy of a [`CounterSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    values: [u64; Counter::COUNT],
}

impl Default for CounterSnapshot {
    fn default() -> Self {
        Self::zero()
    }
}

impl CounterSnapshot {
    /// The all-zero snapshot (the merge identity).
    pub fn zero() -> Self {
        Self { values: [0; Counter::COUNT] }
    }

    /// Build a snapshot from explicit values in [`Counter::ALL`] order
    /// (test support).
    pub fn from_values(values: [u64; Counter::COUNT]) -> Self {
        Self { values }
    }

    /// Value of one counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.values[counter.index()]
    }

    /// Merge another snapshot into this one, counter by counter. Addition
    /// wraps, so the merge is total, associative, and commutative — the
    /// algebra the obs proptests pin.
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            values: std::array::from_fn(|i| self.values[i].wrapping_add(other.values[i])),
        }
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }

    /// Iterate `(key, value)` pairs with non-zero values, export order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Counter::ALL
            .iter()
            .filter(move |&&c| self.get(c) != 0)
            .map(move |&c| (c.key(), self.get(c)))
    }

    /// Iterate every `(key, value)` pair in export order.
    pub fn iter_all(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Counter::ALL.iter().map(move |&c| (c.key(), self.get(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_snapshot_round_trip() {
        let set = CounterSet::new();
        set.add(Counter::MacOps, 256);
        set.add(Counter::MacOps, 256);
        set.store(Counter::ExecutorChunksClaimed, 7);
        let snap = set.snapshot();
        assert_eq!(snap.get(Counter::MacOps), 512);
        assert_eq!(snap.get(Counter::ExecutorChunksClaimed), 7);
        assert_eq!(snap.get(Counter::PcmWrites), 0);
    }

    #[test]
    fn merge_is_elementwise_addition() {
        let mut a = [0u64; Counter::COUNT];
        a[Counter::MacOps as usize] = 10;
        let mut b = [0u64; Counter::COUNT];
        b[Counter::MacOps as usize] = 5;
        b[Counter::PcmWrites as usize] = 3;
        let merged = CounterSnapshot::from_values(a).merge(&CounterSnapshot::from_values(b));
        assert_eq!(merged.get(Counter::MacOps), 15);
        assert_eq!(merged.get(Counter::PcmWrites), 3);
    }

    #[test]
    fn fj_conversion_rounds_and_saturates() {
        assert_eq!(fj_from_pj(0.1), 100);
        assert_eq!(fj_from_pj(660.0), 660_000);
        assert_eq!(fj_from_pj(-5.0), 0);
        assert_eq!(fj_from_pj(f64::NAN), 0);
        assert_eq!(fj_from_pj(f64::INFINITY), 0);
        assert_eq!(fj_from_pj(1e30), u64::MAX);
    }

    #[test]
    fn ns_conversion_rounds_and_saturates() {
        assert_eq!(ns_from_ns_f64(299.6), 300);
        assert_eq!(ns_from_ns_f64(-1.0), 0);
        assert_eq!(ns_from_ns_f64(1e30), u64::MAX);
    }

    #[test]
    fn keys_are_unique() {
        let mut keys: Vec<&str> = Counter::ALL.iter().map(|c| c.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), Counter::COUNT);
    }

    #[test]
    fn store_max_only_raises() {
        let set = CounterSet::new();
        set.store_max(Counter::ArenaHighWater, 100);
        set.store_max(Counter::ArenaHighWater, 40);
        assert_eq!(set.get(Counter::ArenaHighWater), 100);
        set.store_max(Counter::ArenaHighWater, 250);
        assert_eq!(set.get(Counter::ArenaHighWater), 250);
    }

    #[test]
    fn reset_zeroes_everything() {
        let set = CounterSet::new();
        set.add(Counter::PcmReads, 9);
        set.reset();
        assert!(set.snapshot().is_zero());
    }
}
