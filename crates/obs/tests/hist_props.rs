//! Property tests for the latency histogram (PR 7 satellite):
//!
//! * snapshot merge is associative and commutative with the all-zero
//!   snapshot as identity — the same wrapping-`u64` algebra the counter
//!   proptests pin, so fleet-wide histograms can be folded in any order;
//! * quantile estimates are monotone in the quantile and bracket every
//!   recorded value: an estimate is never below the true value's bucket
//!   lower bound and never below the value itself (upper-bound policy);
//! * recording never loses a count: the snapshot total equals the number
//!   of `record_ns` calls, regardless of the values recorded.

#![allow(clippy::unwrap_used, clippy::cast_lossless)]

use proptest::prelude::*;
use trident_obs::hist::{bucket_bounds_ns, HistSnapshot, LatencyHistogram, BUCKETS};

fn snap_from(counts: &[u64]) -> HistSnapshot {
    let mut all = [0u64; BUCKETS];
    for (slot, &v) in all.iter_mut().zip(counts) {
        *slot = v;
    }
    HistSnapshot::from_buckets(all)
}

proptest! {
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..u64::MAX, BUCKETS),
        b in proptest::collection::vec(0u64..u64::MAX, BUCKETS),
    ) {
        let (sa, sb) = (snap_from(&a), snap_from(&b));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
    }

    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..u64::MAX, BUCKETS),
        b in proptest::collection::vec(0u64..u64::MAX, BUCKETS),
        c in proptest::collection::vec(0u64..u64::MAX, BUCKETS),
    ) {
        let (sa, sb, sc) = (snap_from(&a), snap_from(&b), snap_from(&c));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
    }

    #[test]
    fn merge_identity_is_zero(
        a in proptest::collection::vec(0u64..u64::MAX, BUCKETS),
    ) {
        let sa = snap_from(&a);
        prop_assert_eq!(sa.merge(&HistSnapshot::zero()), sa);
        prop_assert_eq!(HistSnapshot::zero().merge(&sa), sa);
    }

    #[test]
    fn recording_never_loses_counts(values in proptest::collection::vec(0u64..u64::MAX, 0..256)) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record_ns(v);
        }
        prop_assert_eq!(h.snapshot().count(), values.len() as u64);
    }

    #[test]
    fn quantiles_are_monotone_in_rank(
        values in proptest::collection::vec(0u64..u64::MAX, 1..128),
        quantile_permille in proptest::collection::vec(1u64..=1000, 2..8),
    ) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record_ns(v);
        }
        let snap = h.snapshot();
        let mut sorted = quantile_permille;
        sorted.sort_unstable();
        let estimates: Vec<u64> =
            sorted.iter().map(|&q| snap.quantile_upper_ns(q, 1000)).collect();
        for pair in estimates.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantile estimates not monotone: {estimates:?}");
        }
    }

    #[test]
    fn quantile_upper_bound_brackets_true_quantile(
        values in proptest::collection::vec(0u64..u64::MAX, 1..128),
        numer in 1u64..=1000,
    ) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record_ns(v);
        }
        let snap = h.snapshot();
        let estimate = snap.quantile_upper_ns(numer, 1000);
        // True quantile under the same ceil-rank convention.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let total = sorted.len() as u64;
        let rank = ((u128::from(total) * u128::from(numer)).div_ceil(1000)).max(1);
        let truth = sorted[usize::try_from(rank - 1).unwrap()];
        // Upper-bound policy: never below the true quantile, and never
        // above the upper bound of the bucket holding the true quantile
        // (since the estimate's bucket rank is exact over buckets).
        prop_assert!(estimate >= truth, "estimate {estimate} below true quantile {truth}");
        let idx = (0..BUCKETS)
            .find(|&i| {
                let (lo, hi) = bucket_bounds_ns(i);
                lo <= truth && truth <= hi
            })
            .unwrap();
        prop_assert_eq!(estimate, snap.quantile_upper_ns(numer, 1000));
        prop_assert!(
            estimate <= bucket_bounds_ns(idx).1,
            "estimate {} above bucket upper bound {}", estimate, bucket_bounds_ns(idx).1
        );
    }

    #[test]
    fn every_recorded_value_is_inside_its_bucket(v in 0u64..u64::MAX) {
        let h = LatencyHistogram::new();
        h.record_ns(v);
        let snap = h.snapshot();
        let idx = (0..BUCKETS).find(|&i| snap.bucket(i) == 1).unwrap();
        let (lo, hi) = bucket_bounds_ns(idx);
        prop_assert!(lo <= v && v <= hi, "value {v} outside bucket {idx} [{lo}, {hi}]");
        prop_assert!(snap.max_upper_ns() >= v);
    }
}
