//! Property tests for the obs algebra (PR 5 satellite):
//!
//! * counter-snapshot merge is associative and commutative with the
//!   all-zero snapshot as identity (the wrapping-`u64` design exists
//!   precisely to make this provable);
//! * RAII span nesting is always well-formed — depth returns to its
//!   entry value after any tree of guards, and recorded events never
//!   claim a deeper nesting than the guards that produced them;
//! * the ring buffer never loses the overflow count: for any capacity
//!   and push sequence, `retained + dropped == pushed`.

#![allow(clippy::unwrap_used, clippy::cast_lossless)]

use proptest::prelude::*;
use std::borrow::Cow;
use std::sync::Arc;
use trident_obs::clock::ManualClock;
use trident_obs::ring::EventRing;
use trident_obs::{current_depth, Counter, CounterSnapshot, Event, Recorder};

fn snap_from(values: &[u64]) -> CounterSnapshot {
    let mut all = [0u64; Counter::COUNT];
    for (slot, &v) in all.iter_mut().zip(values) {
        *slot = v;
    }
    CounterSnapshot::from_values(all)
}

proptest! {
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..u64::MAX, Counter::COUNT),
        b in proptest::collection::vec(0u64..u64::MAX, Counter::COUNT),
    ) {
        let (sa, sb) = (snap_from(&a), snap_from(&b));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
    }

    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..u64::MAX, Counter::COUNT),
        b in proptest::collection::vec(0u64..u64::MAX, Counter::COUNT),
        c in proptest::collection::vec(0u64..u64::MAX, Counter::COUNT),
    ) {
        let (sa, sb, sc) = (snap_from(&a), snap_from(&b), snap_from(&c));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
    }

    #[test]
    fn merge_identity_is_zero(
        a in proptest::collection::vec(0u64..u64::MAX, Counter::COUNT),
    ) {
        let sa = snap_from(&a);
        prop_assert_eq!(sa.merge(&CounterSnapshot::zero()), sa);
        prop_assert_eq!(CounterSnapshot::zero().merge(&sa), sa);
    }

    #[test]
    fn span_nesting_is_well_formed(depths in proptest::collection::vec(1usize..6, 1..8)) {
        // Each element opens a chain of `d` nested guards and drops them
        // all; depth must return to the entry value every time, and no
        // recorded event may claim a depth ≥ its chain length.
        let rec = Recorder::new(1024, Arc::new(ManualClock::new()));
        let entry_depth = current_depth();
        for &d in &depths {
            let mut guards = Vec::with_capacity(d);
            for _ in 0..d {
                guards.push(rec.span("chain"));
            }
            prop_assert_eq!(current_depth() as usize, entry_depth as usize + d);
            drop(guards);
            prop_assert_eq!(current_depth(), entry_depth);
        }
        let snap = rec.snapshot();
        let expected: usize = depths.iter().sum();
        prop_assert_eq!(snap.events.len(), expected);
        prop_assert_eq!(snap.dropped_events, 0);
        // Every chain of d guards records depths entry..entry+d, each
        // exactly once per chain — no orphan exits, no double-closes.
        let max_d = *depths.iter().max().unwrap() as u32;
        for e in &snap.events {
            prop_assert!(e.depth >= entry_depth && e.depth < entry_depth + max_d);
        }
        for (depth_above, want) in (0..max_d).map(|k| {
            (k, depths.iter().filter(|&&d| d as u32 > k).count())
        }) {
            let got = snap
                .events
                .iter()
                .filter(|e| e.depth == entry_depth + depth_above)
                .count();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn ring_overflow_never_loses_the_count(capacity in 0usize..24, pushes in 0usize..96) {
        let ring = EventRing::new(capacity);
        let mut accepted = 0u64;
        for i in 0..pushes {
            let ok = ring.push(Event {
                name: Cow::Borrowed("p"),
                start_ns: i as u64,
                dur_ns: 1,
                tid: 0,
                depth: 0,
            });
            if ok {
                accepted += 1;
            }
        }
        let (events, dropped) = ring.snapshot();
        prop_assert_eq!(events.len() as u64, accepted);
        prop_assert_eq!(events.len() as u64 + dropped, pushes as u64);
        prop_assert!(events.len() <= ring.capacity());
        // Keep-first: the retained events are exactly the first pushes.
        for (k, e) in events.iter().enumerate() {
            prop_assert_eq!(e.start_ns, k as u64);
        }
    }
}
