//! Seeded-negative fixture: a wall-clock read outside
//! `crates/obs/src/clock.rs`, reachable from `arch::cache::render_report`.

/// Reads the host clock — the repro contract forbids this outside the
/// obs crate's `Clock` implementation.
pub fn stamp_ns() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}
