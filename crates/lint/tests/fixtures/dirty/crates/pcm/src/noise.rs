//! Seeded-negative fixture for stream hygiene: locally-defined stream
//! ids, a duplicated id across two logical noise sources in the same
//! domain, and a mixer call addressed with a computed stream.

/// Locally defined — belongs in the `trident-streams` registry.
pub const STREAM_FIX_PROG: u64 = 7;
/// Reuses id 7 in domain `FIX`: programming and read noise now draw
/// identical values.
pub const STREAM_FIX_READ: u64 = 7;

/// Programming noise.
pub fn prog_noise(seed: u64, draw: u64) -> f64 {
    seeded_gaussian(seed, STREAM_FIX_PROG, draw)
}

/// Read noise — correlated with `prog_noise` via the duplicated id.
pub fn read_noise(seed: u64, draw: u64) -> f64 {
    seeded_gaussian(seed, STREAM_FIX_READ, draw)
}

/// A computed stream address: the draw address space is no longer
/// auditable from the registry.
pub fn rotating_noise(seed: u64, source: u64, draw: u64) -> f64 {
    seeded_gaussian(seed, source % 4, draw)
}

fn seeded_gaussian(seed: u64, stream: u64, draw: u64) -> f64 {
    let bits = seed ^ stream.rotate_left(17) ^ draw.rotate_left(41);
    (bits >> 11) as f64 / 9_007_199_254_740_992.0
}
