//! Seeded-negative fixture: every rule should fire on this file.

pub struct Meter {
    readings: Vec<f64>,
}

impl Meter {
    /// A bare-f64 energy function: no unit in the name, raw f64 out.
    pub fn energy(&self) -> f64 {
        self.readings.iter().sum()
    }

    /// An unwrap in library code.
    pub fn last_reading_pj(&self) -> f64 {
        *self.readings.last().unwrap()
    }

    /// A raw numeric cast in a unit-bearing module.
    pub fn mean_pj(&self) -> f64 {
        self.energy() / self.readings.len() as f64
    }
}

/// An error enum without Display or std::error::Error.
pub enum MeterError {
    Empty,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_unwrap() {
        let m = Meter { readings: vec![1.0] };
        assert!(m.readings.first().unwrap() > &0.0);
    }
}
