//! Seeded-negative fixture: hash-ordered iteration in an
//! output-affecting crate, with a call chain the attribution pass must
//! walk (`render_report` → `tally`, and cross-crate into
//! `workload::timing::stamp_ns`).

use std::collections::HashMap;

/// Hash-ordered accumulation: the per-key totals iterate in
/// hash-state order when rendered.
pub fn tally(hits: &[(u32, u64)]) -> HashMap<u32, u64> {
    let mut totals: HashMap<u32, u64> = HashMap::new();
    for &(key, n) in hits {
        *totals.entry(key).or_insert(0) += n;
    }
    totals
}

/// The deterministic-core entry point contaminated by `tally` (and by
/// the wall-clock read in `workload::timing::stamp_ns`).
pub fn render_report(hits: &[(u32, u64)]) -> Vec<String> {
    let stamped = stamp_ns();
    tally(hits)
        .iter()
        .map(|(k, v)| format!("{k}={v}@{stamped}"))
        .collect()
}
