//! Seeded-negative fixture: heap allocation on the serving hot path —
//! a batch dispatcher whose per-batch helper rebuilds its staging
//! buffers on every call, plus a `.collect()` in the entry point
//! itself.

/// Per-batch staging buffers, reallocated on every dispatch.
pub fn stage_buffers(n: usize) -> Vec<Vec<f64>> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(vec![0.0; 8]);
    }
    out
}

/// The serving entry point: every closed batch pays `stage_buffers`'
/// fresh allocations plus a collected id list.
pub fn dispatch_into(batch: &[Vec<f64>], completions: &mut Vec<usize>) {
    let staged = stage_buffers(batch.len());
    let ids: Vec<usize> = staged.iter().map(Vec::len).collect();
    completions.extend(ids);
}
