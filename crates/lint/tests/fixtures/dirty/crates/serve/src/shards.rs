//! Seeded-negative fixture: host-dependent parallelism and raw threads
//! in an output-affecting crate.

/// Worker count probed from the host — results now vary by machine.
pub fn worker_count() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Raw scoped threads summing floats in completion order.
pub fn shard_sum(values: &[f64]) -> f64 {
    let workers = worker_count();
    let chunk = values.len().div_ceil(workers).max(1);
    let mut total = 0.0;
    std::thread::scope(|scope| {
        let handles: Vec<_> =
            values.chunks(chunk).map(|c| scope.spawn(move || c.iter().sum::<f64>())).collect();
        for h in handles {
            if let Ok(part) = h.join() {
                total += part;
            }
        }
    });
    total
}
