//! Clean fixture: deterministic collections and registry-addressed
//! noise draws.

use std::collections::BTreeMap;
use trident_streams::STREAM_FIX_PROG;

/// Ordered accumulation — iteration order is the key order, always.
pub fn tally(hits: &[(u32, u64)]) -> BTreeMap<u32, u64> {
    let mut totals: BTreeMap<u32, u64> = BTreeMap::new();
    for &(key, n) in hits {
        *totals.entry(key).or_insert(0) += n;
    }
    totals
}

/// Programming noise addressed with a registered stream constant.
pub fn prog_noise(seed: u64, draw: u64) -> f64 {
    seeded_gaussian(seed, STREAM_FIX_PROG, draw)
}

fn seeded_gaussian(seed: u64, stream: u64, draw: u64) -> f64 {
    let bits = seed ^ stream.rotate_left(17) ^ draw.rotate_left(41);
    (bits >> 11) as f64 / 9_007_199_254_740_992.0
}
