//! Clean fixture: the stream registry. Ids are unique within the `FIX`
//! domain and the mixer entry points forward their `stream` parameter
//! (the one place a non-constant stream argument is legitimate).

/// Programming-noise stream.
pub const STREAM_FIX_PROG: u64 = 1;
/// Read-noise stream — distinct id, independent draws.
pub const STREAM_FIX_READ: u64 = 2;

/// The stateless counter-addressed mixer.
pub fn mix(seed: u64, stream: u64, draw: u64) -> u64 {
    seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ draw.rotate_left(17)
}

/// Finalized u64 draw.
pub fn seeded_u64(seed: u64, stream: u64, draw: u64) -> u64 {
    let z = mix(seed, stream, draw).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z ^ (z >> 31)
}
