//! Clean fixture: unit-named signatures, no panics, impls complete.

use std::fmt;

pub struct Meter {
    readings: Vec<f64>,
}

impl Meter {
    /// Unit named in the identifier.
    pub fn energy_pj(&self) -> f64 {
        self.readings.iter().sum()
    }

    /// Total alternative instead of unwrap.
    pub fn last_reading_pj(&self) -> f64 {
        self.readings.last().copied().unwrap_or(0.0)
    }
}

/// A well-behaved error enum.
#[derive(Debug)]
pub enum MeterError {
    Empty,
}

impl fmt::Display for MeterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "no readings recorded"),
        }
    }
}

impl std::error::Error for MeterError {}
