//! Seeded-positive fixture: a zero-alloc serving hot path. All staging
//! storage is built once by the constructor (where `vec!`/`.collect()`
//! are sanctioned) and the dispatcher refills it in place.

/// Build-time staging buffers — constructors may allocate freely.
pub fn new_stage(n: usize) -> Vec<Vec<f64>> {
    (0..n).map(|_| vec![0.0; 8]).collect()
}

/// Steady-state dispatch: clears and refills the reused staging
/// buffers, allocating nothing per batch.
pub fn dispatch_into(batch: &[Vec<f64>], stage: &mut [Vec<f64>], completions: &mut Vec<usize>) {
    for (slot, req) in stage.iter_mut().zip(batch) {
        slot.clear();
        slot.extend_from_slice(req);
    }
    completions.clear();
    completions.extend(stage.iter().map(Vec::len));
}
