//! Properties of the call-graph builder: the edge set is a function of
//! the *token stream*, so reformatting — whitespace churn, inserted
//! comments — must never add, drop, or reorder an edge; and no input,
//! however malformed, may panic the mask/tokenize/build pipeline.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use trident_lint::callgraph::{add_source, CallGraph};

/// A small corpus exercising the shapes the builder must handle:
/// free functions, methods, cross-file calls, nesting, test modules.
const CORPUS: &[(&str, &str)] = &[
    (
        "crates/a/src/lib.rs",
        "pub fn entry(x: u64) -> u64 { helper(x) + shared(x) }\n\
         fn helper(x: u64) -> u64 { shared(x) }\n",
    ),
    (
        "crates/b/src/util.rs",
        "pub fn shared(x: u64) -> u64 { x.rotate_left(1) }\n\
         impl Widget { fn render(&self) { shared(0); self.refresh(); } fn refresh(&self) {} }\n",
    ),
    (
        "crates/c/src/dev.rs",
        "fn top() { mid(7); }\nfn mid(n: u64) { if n > 0 { leaf(); } }\nfn leaf() {}\n\
         #[cfg(test)]\nmod tests { fn t() { leaf(); top(); } }\n",
    ),
];

fn build_corpus(reformat: Option<u64>) -> CallGraph {
    let mut g = CallGraph::default();
    for (rel, src) in CORPUS {
        let text = match reformat {
            Some(seed) => reformat_source(src, seed),
            None => (*src).to_string(),
        };
        add_source(&mut g, rel, &text);
    }
    g
}

/// Deterministic pseudo-random reformatter: rejoins the source's
/// whitespace-separated chunks with arbitrary whitespace runs and
/// block comments. Token stream is invariant under this map.
fn reformat_source(src: &str, seed: u64) -> String {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut out = String::new();
    for (i, chunk) in src.split_whitespace().enumerate() {
        if i > 0 {
            match next() % 6 {
                0 => out.push(' '),
                1 => out.push_str("  "),
                2 => out.push('\n'),
                3 => out.push_str("\n\t "),
                4 => out.push_str(" /* reflow */ "),
                _ => out.push_str("\n/* line\n comment */\n"),
            }
        }
        out.push_str(chunk);
    }
    out
}

/// Render the graph into one comparable, deterministic string.
fn fingerprint(g: &CallGraph) -> String {
    g.edges()
        .into_iter()
        .map(|(callee, file, caller)| format!("{file}::{caller} -> {callee}"))
        .collect::<Vec<_>>()
        .join("\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Edge sets survive arbitrary whitespace/comment reformatting.
    #[test]
    fn edges_are_stable_under_reformatting(seed in 0u64..u64::MAX) {
        let canonical = fingerprint(&build_corpus(None));
        let reflowed = fingerprint(&build_corpus(Some(seed)));
        prop_assert_eq!(&canonical, &reflowed);
        prop_assert!(!canonical.is_empty(), "corpus must actually have edges");
    }

    /// Caller attribution is reformat-invariant too, not just raw edges.
    #[test]
    fn reaching_callers_are_stable_under_reformatting(seed in 0u64..u64::MAX) {
        let a = build_corpus(None);
        let b = build_corpus(Some(seed));
        for func in ["shared", "helper", "leaf", "refresh"] {
            prop_assert_eq!(a.reaching_callers(func, 8), b.reaching_callers(func, 8));
        }
    }

    /// Malformed input — unbalanced braces, stray quotes, random
    /// punctuation — must never panic the pipeline.
    #[test]
    fn builder_never_panics_on_byte_soup(seed in 0u64..u64::MAX, len in 0usize..240) {
        let mut state = seed | 1;
        let mut soup = String::with_capacity(len);
        for _ in 0..len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Printable ASCII plus newline: covers quotes, braces,
            // backslashes, '#', '/', '*' in arbitrary orders.
            let c = match state % 97 {
                0 => '\n',
                n => char::from(32 + (n as u8 - 1)),
            };
            soup.push(c);
        }
        let mut g = CallGraph::default();
        add_source(&mut g, "crates/x/src/soup.rs", &soup);
        let _ = g.edges();
        let _ = g.reaching_callers("anything", 4);
    }
}

/// The committed fixture trees are real inputs the builder sees in
/// every integration run — walk every file through it.
#[test]
fn builder_handles_all_fixture_corpora() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut g = CallGraph::default();
    let mut files = 0;
    let mut stack = vec![root];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let text = std::fs::read_to_string(&path).unwrap();
                add_source(&mut g, &path.to_string_lossy(), &text);
                files += 1;
            }
        }
    }
    assert!(files >= 8, "fixture corpus shrank to {files} files");
    assert!(!g.is_empty());
}
