//! End-to-end tests: the library API over fixture trees, and the
//! compiled `trident-lint` binary's exit codes and JSON output.

#![allow(clippy::unwrap_used)]

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn repo_root() -> PathBuf {
    // crates/lint → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

#[test]
fn dirty_fixture_reports_every_rule() {
    let report = trident_lint::run(&fixture("dirty"), &[]).unwrap();
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"no-panic"), "unwrap must be caught: {rules:?}");
    assert!(rules.contains(&"no-bare-f64"), "bare-f64 energy fn must be caught: {rules:?}");
    assert!(rules.contains(&"no-cast"), "as-cast must be caught: {rules:?}");
    assert!(rules.contains(&"error-impl"), "impl-less error enum must be caught: {rules:?}");
    // The unwrap inside #[cfg(test)] must NOT be caught.
    let test_hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.scope.as_deref() == Some("test_code_may_unwrap"))
        .collect();
    assert!(test_hits.is_empty(), "test code is exempt: {test_hits:?}");
}

#[test]
fn clean_fixture_is_clean() {
    let report = trident_lint::run(&fixture("clean"), &[]).unwrap();
    assert!(report.is_clean(), "unexpected findings: {:?}", report.findings);
}

#[test]
fn allowlist_suppresses_and_reports_stale() {
    let allow = trident_lint::allowlist::parse(
        r#"
[[allow]]
file = "crates/photonics/src/energy.rs"
rules = ["no-panic", "no-cast", "no-bare-f64", "error-impl"]
reason = "fixture"

[[allow]]
file = "crates/photonics/src/nonexistent.rs"
rules = ["no-panic"]
reason = "stale"
"#,
    )
    .unwrap();
    let report = trident_lint::run(&fixture("dirty"), &allow).unwrap();
    assert!(report.is_clean());
    assert!(!report.allowed.is_empty());
    assert_eq!(report.stale_allows.len(), 1);
    assert_eq!(report.stale_allows[0].file, "crates/photonics/src/nonexistent.rs");
}

#[test]
fn binary_exits_nonzero_on_dirty_fixture_and_reports_both_seeds() {
    let out = Command::new(env!("CARGO_BIN_EXE_trident-lint"))
        .args(["--root"])
        .arg(fixture("dirty"))
        .args(["--format", "json", "--allowlist", "/dev/null"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "dirty tree must exit 1");
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"clean\": false"));
    assert!(json.contains("no-panic"), "unwrap finding missing from JSON: {json}");
    assert!(json.contains("no-bare-f64"), "bare-f64 finding missing from JSON: {json}");
    assert!(json.contains("\"scope\": \"last_reading_pj\""), "scope missing: {json}");
}

#[test]
fn binary_exits_zero_on_clean_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_trident-lint"))
        .args(["--root"])
        .arg(fixture("clean"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "clean tree must exit 0");
}

#[test]
fn binary_rejects_bad_usage_with_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_trident-lint"))
        .args(["--format", "yaml"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn the_repo_itself_is_clean_under_its_allowlist() {
    let root = repo_root();
    let allow = trident_lint::load_allowlist(&root).expect("allowlist parses");
    assert!(
        allow.len() <= 10,
        "allowlist budget is 10 entries, found {}",
        allow.len()
    );
    let report = trident_lint::run(&root, &allow).expect("scan runs");
    assert!(
        report.is_clean(),
        "repo has non-allowlisted findings:\n{}",
        report.to_text()
    );
    assert!(
        report.stale_allows.is_empty(),
        "stale allowlist entries: {:?}",
        report.stale_allows
    );
}
