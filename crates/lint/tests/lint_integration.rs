//! End-to-end tests: the library API over fixture trees, and the
//! compiled `trident-lint` binary's exit codes and JSON output.

#![allow(clippy::unwrap_used)]

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn repo_root() -> PathBuf {
    // crates/lint → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

#[test]
fn dirty_fixture_reports_every_rule() {
    let report = trident_lint::run(&fixture("dirty"), &[]).unwrap();
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    for rule in trident_lint::ALL_RULES {
        assert!(rules.contains(rule), "`{rule}` must fire on the dirty fixture: {rules:?}");
    }
    // The unwrap inside #[cfg(test)] must NOT be caught.
    let test_hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.scope.as_deref() == Some("test_code_may_unwrap"))
        .collect();
    assert!(test_hits.is_empty(), "test code is exempt: {test_hits:?}");
}

#[test]
fn dirty_fixture_determinism_findings_carry_caller_attribution() {
    let report = trident_lint::run(&fixture("dirty"), &[]).unwrap();
    // The HashMap inside `tally` is reached from `render_report`.
    let hash = report
        .findings
        .iter()
        .find(|f| f.rule == "det-hash-iter" && f.scope.as_deref() == Some("tally"))
        .expect("det-hash-iter in tally");
    assert!(
        hash.callers.contains(&"crates/arch/src/cache.rs::render_report".to_string()),
        "callers: {:?}",
        hash.callers
    );
    // The wall-clock read in `workload::timing::stamp_ns` is reached
    // cross-crate from `arch::cache::render_report`.
    let clock = report
        .findings
        .iter()
        .find(|f| f.rule == "det-wall-clock")
        .expect("det-wall-clock in stamp_ns");
    assert_eq!(clock.file, "crates/workload/src/timing.rs");
    assert!(
        clock.callers.contains(&"crates/arch/src/cache.rs::render_report".to_string()),
        "cross-crate attribution missing: {:?}",
        clock.callers
    );
}

#[test]
fn dirty_fixture_duplicate_stream_id_names_both_sources() {
    let report = trident_lint::run(&fixture("dirty"), &[]).unwrap();
    let dup = report
        .findings
        .iter()
        .find(|f| f.rule == "stream-dup")
        .expect("duplicated stream id must be caught");
    assert_eq!(dup.file, "crates/pcm/src/noise.rs");
    assert!(dup.message.contains("STREAM_FIX_PROG"), "{}", dup.message);
    assert!(dup.message.contains("STREAM_FIX_READ"), "{}", dup.message);
    let nonconst = report
        .findings
        .iter()
        .find(|f| f.rule == "stream-nonconst")
        .expect("computed stream address must be caught");
    assert_eq!(nonconst.scope.as_deref(), Some("rotating_noise"));
    assert!(nonconst.message.contains("source % 4"), "{}", nonconst.message);
}

#[test]
fn dirty_fixture_hot_path_allocs_carry_entry_point_attribution() {
    let report = trident_lint::run(&fixture("dirty"), &[]).unwrap();
    let hits: Vec<_> =
        report.findings.iter().filter(|f| f.rule == "hot-path-alloc").collect();
    // Two idioms in the helper, one in the entry point itself.
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert!(hits.iter().all(|f| f.file == "crates/serve/src/hotpath.rs"), "{hits:?}");
    let helper = hits
        .iter()
        .find(|f| f.scope.as_deref() == Some("stage_buffers"))
        .expect("helper finding");
    assert!(
        helper.callers.contains(&"crates/serve/src/hotpath.rs::dispatch_into".to_string()),
        "the finding must name the entry point that reaches it: {:?}",
        helper.callers
    );
}

#[test]
fn rule_filter_limits_the_run() {
    let filter = trident_lint::RuleFilter::parse("stream").unwrap();
    let report = trident_lint::run_filtered(&fixture("dirty"), &[], &filter).unwrap();
    assert!(!report.findings.is_empty());
    assert!(
        report.findings.iter().all(|f| f.rule.starts_with("stream-")),
        "only stream rules may fire: {:?}",
        report.findings.iter().map(|f| f.rule).collect::<Vec<_>>()
    );
    assert_eq!(report.rules_run, ["stream-local-const", "stream-dup", "stream-nonconst"]);
}

#[test]
fn clean_fixture_is_clean() {
    let report = trident_lint::run(&fixture("clean"), &[]).unwrap();
    assert!(report.is_clean(), "unexpected findings: {:?}", report.findings);
}

#[test]
fn allowlist_suppresses_and_reports_stale() {
    let allow = trident_lint::allowlist::parse(
        r#"
[[allow]]
file = "crates/photonics/src/energy.rs"
rules = ["no-panic", "no-cast", "no-bare-f64", "error-impl"]
reason = "fixture"

[[allow]]
file = "crates/arch/src/cache.rs"
rules = ["det-hash-iter"]
reason = "fixture"

[[allow]]
file = "crates/workload/src/timing.rs"
rules = ["det-wall-clock"]
reason = "fixture"

[[allow]]
file = "crates/serve/src/shards.rs"
rules = ["det-thread-env", "det-raw-thread"]
reason = "fixture"

[[allow]]
file = "crates/pcm/src/noise.rs"
rules = ["stream-local-const", "stream-dup", "stream-nonconst"]
reason = "fixture"

[[allow]]
file = "crates/serve/src/hotpath.rs"
rules = ["hot-path-alloc"]
reason = "fixture"

[[allow]]
file = "crates/photonics/src/nonexistent.rs"
rules = ["no-panic"]
reason = "stale"
"#,
    )
    .unwrap();
    let report = trident_lint::run(&fixture("dirty"), &allow).unwrap();
    assert!(report.is_clean());
    assert!(!report.allowed.is_empty());
    assert_eq!(report.stale_allows.len(), 1);
    assert_eq!(report.stale_allows[0].file, "crates/photonics/src/nonexistent.rs");
}

#[test]
fn binary_exits_nonzero_on_dirty_fixture_and_reports_both_seeds() {
    let out = Command::new(env!("CARGO_BIN_EXE_trident-lint"))
        .args(["--root"])
        .arg(fixture("dirty"))
        .args(["--format", "json", "--allowlist", "/dev/null"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "dirty tree must exit 1");
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"clean\": false"));
    assert!(json.contains("no-panic"), "unwrap finding missing from JSON: {json}");
    assert!(json.contains("no-bare-f64"), "bare-f64 finding missing from JSON: {json}");
    assert!(json.contains("\"scope\": \"last_reading_pj\""), "scope missing: {json}");
}

#[test]
fn binary_exits_zero_on_clean_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_trident-lint"))
        .args(["--root"])
        .arg(fixture("clean"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "clean tree must exit 0");
}

#[test]
fn binary_rejects_bad_usage_with_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_trident-lint"))
        .args(["--format", "yaml"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn binary_rules_flag_filters_and_rejects_unknown() {
    // Only the units family: the dirty tree's stream findings must not
    // appear and rules_run must list exactly the family's rules.
    let out = Command::new(env!("CARGO_BIN_EXE_trident-lint"))
        .args(["--root"])
        .arg(fixture("dirty"))
        .args(["--rules", "units", "--format", "json", "--allowlist", "/dev/null"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"rules_run\": [\"no-cast\", \"no-bare-f64\"]"), "{json}");
    assert!(!json.contains("stream-dup"), "filtered-out rule leaked: {json}");
    // Unknown rule name is a usage error.
    let bad = Command::new(env!("CARGO_BIN_EXE_trident-lint"))
        .args(["--rules", "no-such-rule"])
        .output()
        .expect("binary runs");
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn binary_check_allowlist_fails_on_stale_entries() {
    let dir = std::env::temp_dir().join("trident-lint-stale-test");
    std::fs::create_dir_all(&dir).unwrap();
    let allow = dir.join("stale-allow.toml");
    std::fs::write(
        &allow,
        "[[allow]]\nfile = \"crates/does/not/exist.rs\"\nrules = [\"no-panic\"]\nreason = \"stale\"\n",
    )
    .unwrap();
    // The clean fixture has no findings, so the only failure mode is
    // the stale entry — and it must fail only under --check-allowlist.
    let without = Command::new(env!("CARGO_BIN_EXE_trident-lint"))
        .args(["--root"])
        .arg(fixture("clean"))
        .args(["--allowlist"])
        .arg(&allow)
        .output()
        .expect("binary runs");
    assert_eq!(without.status.code(), Some(0), "stale entries alone don't fail a plain run");
    let with = Command::new(env!("CARGO_BIN_EXE_trident-lint"))
        .args(["--root"])
        .arg(fixture("clean"))
        .args(["--allowlist"])
        .arg(&allow)
        .arg("--check-allowlist")
        .output()
        .expect("binary runs");
    assert_eq!(with.status.code(), Some(1), "--check-allowlist must fail on stale entries");
    let err = String::from_utf8_lossy(&with.stderr);
    assert!(err.contains("stale"), "{err}");
}

#[test]
fn binary_check_allowlist_passes_on_the_real_repo() {
    let out = Command::new(env!("CARGO_BIN_EXE_trident-lint"))
        .args(["--root"])
        .arg(repo_root())
        .arg("--check-allowlist")
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "repo allowlist has debt:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn check_allowlist_ignores_entries_for_rules_not_run() {
    // Under --rules, entries exempting disabled rules never get a chance
    // to match; they must not be reported as stale debt.
    let out = Command::new(env!("CARGO_BIN_EXE_trident-lint"))
        .args(["--root"])
        .arg(repo_root())
        .args(["--rules", "determinism", "--check-allowlist"])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "filtered --check-allowlist flagged out-of-scope entries:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("stale"),
        "no stale warnings expected on a filtered run"
    );
}

#[test]
fn the_repo_itself_is_clean_under_its_allowlist() {
    let root = repo_root();
    let allow = trident_lint::load_allowlist(&root).expect("allowlist parses");
    assert!(
        allow.len() <= trident_lint::ALLOWLIST_BUDGET,
        "allowlist budget is {} entries, found {}",
        trident_lint::ALLOWLIST_BUDGET,
        allow.len()
    );
    let report = trident_lint::run(&root, &allow).expect("scan runs");
    assert!(
        report.is_clean(),
        "repo has non-allowlisted findings:\n{}",
        report.to_text()
    );
    assert!(
        report.stale_allows.is_empty(),
        "stale allowlist entries: {:?}",
        report.stale_allows
    );
}
