//! Hand-rolled Rust source scanner.
//!
//! Parsing a full Rust grammar is out of scope (and would drag in syn,
//! which the offline build cannot have). The lint rules only need a
//! token stream with three pieces of context per token:
//!
//! * the line it sits on,
//! * whether it is inside a `#[cfg(test)]` item, and
//! * the name of the enclosing `fn`, if any.
//!
//! The scanner gets there in two passes: [`mask`] blanks out comments,
//! strings and char literals (preserving byte offsets and newlines so
//! line numbers survive), and [`tokenize`] walks the masked text
//! producing [`Token`]s annotated by a brace-depth walker.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Word(String),
    /// Numeric literal, raw text (`42`, `0x7f`, `1_000u64`, `2.5e-3`).
    /// Kept whole so suffixes never surface as word tokens; the
    /// stream-hygiene rules parse integer values out via
    /// [`parse_u64_literal`].
    Number(String),
    /// Single punctuation character (`{`, `}`, `(`, `)`, `;`, `!`, …).
    /// `->` and `::` are folded into single punct tokens `'>'`-prefixed
    /// by convention: see [`Token::is_arrow`].
    Punct(char),
    /// The two-character arrow `->`.
    Arrow,
}

/// One token with its surrounding context.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind and text.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// True when the token sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// Innermost enclosing function name, if the token is inside a body.
    pub enclosing_fn: Option<String>,
}

impl Token {
    /// The word text, if this is a word token.
    pub fn word(&self) -> Option<&str> {
        match self.kind {
            TokenKind::Word(ref w) => Some(w),
            _ => None,
        }
    }

    /// The literal text, if this is a numeric-literal token.
    pub fn number(&self) -> Option<&str> {
        match self.kind {
            TokenKind::Number(ref n) => Some(n),
            _ => None,
        }
    }

    /// True when this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// True when this token is the `->` arrow.
    pub fn is_arrow(&self) -> bool {
        self.kind == TokenKind::Arrow
    }
}

/// Blank out comments, string literals and char literals with spaces,
/// keeping newlines (and therefore line numbers and byte offsets) intact.
pub fn mask(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let next = if i + 1 < bytes.len() { bytes[i + 1] } else { 0 };
        if b == b'/' && next == b'/' {
            // Line comment: blank to end of line.
            while i < bytes.len() && bytes[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
        } else if b == b'/' && next == b'*' {
            // Block comment, possibly nested.
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
        } else if b == b'r' && (next == b'"' || next == b'#') && is_raw_string_start(bytes, i) {
            // Raw string r"..." or r#"..."# (any number of #).
            let mut j = i + 1;
            let mut hashes = 0;
            while j < bytes.len() && bytes[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            // bytes[j] == b'"' guaranteed by is_raw_string_start.
            j += 1;
            out.push(b' ');
            out.extend(std::iter::repeat_n(b' ', hashes + 1));
            while j < bytes.len() {
                if bytes[j] == b'"' && closes_raw(bytes, j, hashes) {
                    out.extend(std::iter::repeat_n(b' ', hashes + 1));
                    j += 1 + hashes;
                    break;
                }
                out.push(if bytes[j] == b'\n' { b'\n' } else { b' ' });
                j += 1;
            }
            i = j;
        } else if b == b'"' {
            // Regular string literal.
            out.push(b' ');
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\\' && i + 1 < bytes.len() {
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if bytes[i] == b'"' {
                    out.push(b' ');
                    i += 1;
                    break;
                } else {
                    out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
        } else if b == b'\'' {
            // Char literal or lifetime. A char literal closes with ' within
            // a couple of bytes; a lifetime never closes.
            if let Some(end) = char_literal_end(bytes, i) {
                for &bk in &bytes[i..=end] {
                    out.push(if bk == b'\n' { b'\n' } else { b' ' });
                }
                i = end + 1;
            } else {
                out.push(b);
                i += 1;
            }
        } else {
            out.push(b);
            i += 1;
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // At bytes[i] == 'r': true when followed by #*" .
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

fn closes_raw(bytes: &[u8], quote: usize, hashes: usize) -> bool {
    bytes.len() > quote + hashes && bytes[quote + 1..=quote + hashes].iter().all(|&b| b == b'#')
}

fn char_literal_end(bytes: &[u8], start: usize) -> Option<usize> {
    // bytes[start] == '\''; a char literal is '\'' (escape|byte+) '\'' and
    // in practice closes within 12 bytes (covers \u{10FFFF}). Anything
    // longer is a lifetime.
    let mut j = start + 1;
    if j < bytes.len() && bytes[j] == b'\\' {
        j += 2; // skip the escape lead
        while j < bytes.len() && bytes[j] != b'\'' && j - start < 12 {
            j += 1;
        }
        return (j < bytes.len() && bytes[j] == b'\'').then_some(j);
    }
    // Unescaped: exactly one char (possibly multi-byte) then a quote.
    let mut k = j;
    while k < bytes.len() && k - j < 4 {
        if bytes[k] == b'\'' {
            return (k > j).then_some(k);
        }
        k += 1;
    }
    None
}

/// Parse an integer literal token's value: handles `_` separators,
/// `0x`/`0o`/`0b` radices, and trailing type suffixes (`u64`, `usize`,
/// …). Float literals and overflow return `None`.
pub fn parse_u64_literal(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = match t.get(..2) {
        Some("0x") | Some("0X") => (16, &t[2..]),
        Some("0o") | Some("0O") => (8, &t[2..]),
        Some("0b") | Some("0B") => (2, &t[2..]),
        _ => (10, t.as_str()),
    };
    // Strip a type suffix: the longest trailing run that is not a valid
    // digit of the radix (e.g. `u64` in `7u64`, but keep hex `b` in `0x1b`).
    let end = digits
        .char_indices()
        .find(|&(_, c)| !c.is_digit(radix))
        .map_or(digits.len(), |(i, _)| i);
    if end == 0 {
        return None;
    }
    // Reject floats (`1.5`, `2e9`, `10f64`): a '.', a decimal exponent,
    // or an `f32`/`f64` suffix means this never was an integer literal.
    if radix == 10 && digits[end..].starts_with(['.', 'e', 'E', 'f']) {
        return None;
    }
    u64::from_str_radix(&digits[..end], radix).ok()
}

/// Tokenize masked source, annotating each token with its line, test
/// status and enclosing function.
pub fn tokenize(masked: &str) -> Vec<Token> {
    let mut raw: Vec<(TokenKind, usize)> = Vec::new();
    let mut line = 1usize;
    let bytes = masked.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
        } else if b.is_ascii_whitespace() {
            i += 1;
        } else if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = String::from_utf8_lossy(&bytes[start..i]).into_owned();
            raw.push((TokenKind::Word(word), line));
        } else if b == b'-' && i + 1 < bytes.len() && bytes[i + 1] == b'>' {
            raw.push((TokenKind::Arrow, line));
            i += 2;
        } else if b.is_ascii_digit() {
            // Numeric literal (including suffixed forms like 10f64 and
            // float exponents): swallow it whole so the suffix never
            // surfaces as a word token.
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric()
                    || bytes[i] == b'_'
                    || bytes[i] == b'.'
                    || ((bytes[i] == b'+' || bytes[i] == b'-')
                        && matches!(bytes[i - 1], b'e' | b'E')))
            {
                // A second '.' (e.g. `1.0.sqrt()`) belongs to a method
                // call, not the literal.
                if bytes[i] == b'.'
                    && (i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit())
                {
                    break;
                }
                i += 1;
            }
            let text = String::from_utf8_lossy(&bytes[start..i]).into_owned();
            raw.push((TokenKind::Number(text), line));
        } else {
            raw.push((TokenKind::Punct(b as char), line));
            i += 1;
        }
    }
    annotate(raw)
}

/// The brace-depth walker: adds `in_test` and `enclosing_fn` context.
fn annotate(raw: Vec<(TokenKind, usize)>) -> Vec<Token> {
    let mut out = Vec::with_capacity(raw.len());
    let mut depth = 0usize;
    let mut fn_stack: Vec<(String, usize)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    // Depth outside the cfg(test) block, once armed fires on next `{`.
    let mut test_exit_depth: Option<usize> = None;
    let mut cfg_armed = false;

    for idx in 0..raw.len() {
        let (ref kind, line) = raw[idx];
        out.push(Token {
            kind: kind.clone(),
            line,
            in_test: test_exit_depth.is_some(),
            enclosing_fn: fn_stack.last().map(|(n, _)| n.clone()),
        });
        match *kind {
            TokenKind::Word(ref w) if w == "fn" => {
                if let Some((TokenKind::Word(name), _)) = raw.get(idx + 1).cloned() {
                    pending_fn = Some(name);
                }
            }
            TokenKind::Punct('#')
                if is_cfg_test_attr(&raw, idx) && test_exit_depth.is_none() =>
            {
                cfg_armed = true;
            }
            TokenKind::Punct('{') => {
                if cfg_armed {
                    test_exit_depth = Some(depth);
                    cfg_armed = false;
                }
                depth += 1;
                if let Some(name) = pending_fn.take() {
                    fn_stack.push((name, depth));
                }
            }
            TokenKind::Punct('}') => {
                if fn_stack.last().is_some_and(|&(_, d)| d == depth) {
                    fn_stack.pop();
                }
                depth = depth.saturating_sub(1);
                if test_exit_depth.is_some_and(|d| depth <= d) {
                    test_exit_depth = None;
                }
            }
            TokenKind::Punct(';') => {
                // A bodyless declaration (trait method, extern fn).
                pending_fn = None;
                // cfg(test) on a bodyless item (`mod tests;`, `use …;`).
                cfg_armed = false;
            }
            _ => {}
        }
    }
    out
}

/// Does the `#` at `raw[idx]` start a `#[cfg(test)]` attribute?
fn is_cfg_test_attr(raw: &[(TokenKind, usize)], idx: usize) -> bool {
    let want: [&str; 5] = ["[", "cfg", "(", "test", ")"];
    want.iter().enumerate().all(|(off, w)| match raw.get(idx + 1 + off) {
        Some((TokenKind::Word(t), _)) => t == w,
        Some((TokenKind::Punct(c), _)) => {
            w.len() == 1 && *c == w.chars().next().unwrap_or(' ')
        }
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(tokens: &[Token]) -> Vec<&str> {
        tokens.iter().filter_map(Token::word).collect()
    }

    #[test]
    fn comments_and_strings_are_masked() {
        let src = "let x = \"unwrap()\"; // unwrap()\n/* unwrap() */ let y = 1;";
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let x"));
        assert_eq!(src.matches('\n').count(), m.matches('\n').count());
    }

    #[test]
    fn raw_strings_and_chars_are_masked() {
        let m = mask("let s = r#\"panic!\"#; let c = '\\n'; let l: &'static str = s;");
        assert!(!m.contains("panic"));
        assert!(m.contains("static"), "lifetimes must survive: {m}");
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let src = "fn a() { b.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { c.unwrap(); } }";
        let toks = tokenize(&mask(src));
        let unwraps: Vec<_> =
            toks.iter().filter(|t| t.word() == Some("unwrap")).collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!unwraps[0].in_test);
        assert!(unwraps[1].in_test);
    }

    #[test]
    fn enclosing_fn_is_tracked() {
        let src = "impl X { fn first(&self) { a(); } fn second() { b(); } }";
        let toks = tokenize(&mask(src));
        let a = toks.iter().find(|t| t.word() == Some("a")).map(|t| t.enclosing_fn.clone());
        let b = toks.iter().find(|t| t.word() == Some("b")).map(|t| t.enclosing_fn.clone());
        assert_eq!(a, Some(Some("first".into())));
        assert_eq!(b, Some(Some("second".into())));
    }

    #[test]
    fn numeric_suffixes_do_not_leak_words() {
        let toks = tokenize(&mask("let x = 10f64.powf(2.0); let y = 1_000u64;"));
        assert!(!words(&toks).contains(&"f64"), "suffix leaked: {:?}", words(&toks));
        assert!(words(&toks).contains(&"powf"));
    }

    #[test]
    fn arrow_is_one_token() {
        let toks = tokenize(&mask("fn f() -> f64 { 0.0 }"));
        assert!(toks.iter().any(Token::is_arrow));
    }

    #[test]
    fn numeric_literals_become_number_tokens() {
        let toks = tokenize(&mask("const A: u64 = 0x7f; let b = 1_000u64; let c = 2.5;"));
        let nums: Vec<&str> = toks.iter().filter_map(Token::number).collect();
        assert_eq!(nums, vec!["0x7f", "1_000u64", "2.5"]);
    }

    #[test]
    fn u64_literals_parse() {
        assert_eq!(parse_u64_literal("42"), Some(42));
        assert_eq!(parse_u64_literal("1_000"), Some(1000));
        assert_eq!(parse_u64_literal("0x7f"), Some(127));
        assert_eq!(parse_u64_literal("0b101"), Some(5));
        assert_eq!(parse_u64_literal("7u64"), Some(7));
        assert_eq!(parse_u64_literal("3usize"), Some(3));
        assert_eq!(parse_u64_literal("2.5"), None, "floats are not integers");
        assert_eq!(parse_u64_literal("2e9"), None, "exponent floats are not integers");
        assert_eq!(parse_u64_literal("10f64"), None, "f64 suffix is a float");
        assert_eq!(parse_u64_literal("0x"), None);
    }
}
