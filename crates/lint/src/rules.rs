//! The lint rules.
//!
//! | rule         | scope                 | what it rejects                              |
//! |--------------|-----------------------|----------------------------------------------|
//! | `no-panic`   | all library code      | `.unwrap()`, `.expect(…)`, `panic!`, `todo!`, `unimplemented!`, `unreachable!` |
//! | `no-cast`    | unit-bearing modules  | raw `as` numeric casts                       |
//! | `no-bare-f64`| unit-bearing modules  | `pub fn` quantities without a unit in the name, bare-`f64` quantity params |
//! | `error-impl` | all library code      | `pub enum *Error` without `Display` + `std::error::Error` |
//!
//! Unit-bearing modules are where Table IV–VI numbers are assembled:
//! `arch/{power,perf,area,endurance}.rs`, `pcm/stat.rs` (drift exponents,
//! noise σ and deployment time must carry units or dimensionless names),
//! everything in `photonics/`, everything in `baselines/`. There the
//! energy/latency arithmetic must
//! flow through `photonics::units` newtypes; a raw `f64` is assumed to be
//! a dimensionless factor and must say so in its name.

use crate::scanner::Token;

/// A single rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id (`no-panic`, `det-hash-iter`, `stream-dup`, …).
    pub rule: &'static str,
    /// Enclosing function, when the violation sits inside one.
    pub scope: Option<String>,
    /// Call-graph attribution: production functions that reach `scope`,
    /// as `"file::fn"`, breadth first. Filled for determinism/stream
    /// findings; empty when attribution does not apply.
    pub callers: Vec<String>,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// The rule family this finding belongs to (`panic`, `units`,
    /// `error`, `determinism`, `stream`).
    pub fn family(&self) -> &'static str {
        family_of(self.rule)
    }
}

/// Map a rule id to its family tag (report schema v2).
pub fn family_of(rule: &str) -> &'static str {
    match rule {
        "no-panic" => "panic",
        "no-cast" | "no-bare-f64" => "units",
        "error-impl" => "error",
        "hot-path-alloc" => "alloc",
        r if r.starts_with("det-") => "determinism",
        r if r.starts_with("stream-") => "stream",
        _ => "other",
    }
}

/// Numeric types a raw `as` cast may not target (or source) in
/// unit-bearing modules.
const NUMERIC_TYPES: &[&str] = &[
    "f32", "f64", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64",
    "i128", "isize",
];

/// Identifier segments that count as naming a unit.
const UNIT_SEGMENTS: &[&str] = &[
    // power / energy
    "mw", "w", "kw", "watts", "milliwatts", "pj", "nj", "uj", "mj", "j", "joules",
    "picojoules", "nanojoules", "microjoules", "millijoules",
    // time / frequency
    "ns", "us", "ms", "s", "secs", "seconds", "nanos", "micros", "millis", "hz", "khz",
    "mhz", "ghz", "fps",
    // geometry
    "nm", "um", "mm", "cm", "m", "meters", "um2", "mm2", "cm2",
    // electrical / optical
    "ma", "a", "amps", "mv", "v", "volts", "voltage", "db", "dbm",
    // rates and composite units
    "tops", "gops", "flops", "per", "x",
    // misc dimensions
    "years", "hours", "days", "bits", "bytes", "rad", "radians", "deg", "kelvin", "c", "k",
    "percent", "pct",
];

/// Identifier segments that declare a value dimensionless on purpose.
const DIMENSIONLESS_SEGMENTS: &[&str] = &[
    "share", "ratio", "factor", "fraction", "frac", "gain", "amplitude", "transmission",
    "transmittance", "probability", "prob", "efficiency", "utilization", "gaussian",
    "uniform", "finesse", "fwhm", "q", "index", "idx", "count", "norm", "loss",
    "sensitivity", "responsivity", "slope", "coupling", "contrast", "accuracy", "snr",
    "sxr", "ber", "occupancy", "crystallinity", "reflectivity", "derivative", "threshold",
    "speedup", "level", "weight", "scale",
];

/// Bare parameter names that clearly denote a physical quantity and so
/// must arrive as a `photonics::units` newtype, not a raw `f64`.
const QUANTITY_PARAM_NAMES: &[&str] = &[
    "energy", "power", "time", "latency", "duration", "area", "current", "voltage",
    "wavelength", "temperature", "frequency",
];

/// Is this repo-relative path a unit-bearing module?
pub fn is_unit_bearing(rel: &str) -> bool {
    let p = rel.replace('\\', "/");
    p.starts_with("crates/photonics/src/")
        || p.starts_with("crates/baselines/src/")
        || p.starts_with("crates/obs/src/")
        || matches!(
            p.as_str(),
            "crates/arch/src/power.rs"
                | "crates/arch/src/perf.rs"
                | "crates/arch/src/area.rs"
                | "crates/arch/src/endurance.rs"
                | "crates/pcm/src/stat.rs"
                | "crates/nn/src/attention.rs"
                | "crates/workload/src/kv.rs"
        )
}

/// Run the per-file rules over one tokenized file.
pub fn check_file(rel: &str, tokens: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    no_panic(rel, tokens, &mut findings);
    if is_unit_bearing(rel) {
        no_cast(rel, tokens, &mut findings);
        no_bare_f64(rel, tokens, &mut findings);
    }
    findings
}

fn no_panic(rel: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(word) = t.word() else { continue };
        let next_is = |c: char| tokens.get(i + 1).is_some_and(|n| n.is_punct(c));
        let prev_is_dot = i > 0 && tokens[i - 1].is_punct('.');
        match word {
            "unwrap" | "expect" if prev_is_dot && next_is('(') => {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: "no-panic",
                    scope: t.enclosing_fn.clone(),
                    callers: Vec::new(),
                    message: format!(
                        "`.{word}()` in library code; propagate a typed error or use a total alternative"
                    ),
                });
            }
            "panic" | "todo" | "unimplemented" | "unreachable" if next_is('!') => {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: "no-panic",
                    scope: t.enclosing_fn.clone(),
                    callers: Vec::new(),
                    message: format!("`{word}!` in library code; return a typed error instead"),
                });
            }
            _ => {}
        }
    }
}

fn no_cast(rel: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test || t.word() != Some("as") {
            continue;
        }
        let Some(next) = tokens.get(i + 1).and_then(Token::word) else { continue };
        if NUMERIC_TYPES.contains(&next) {
            findings.push(Finding {
                file: rel.to_string(),
                line: t.line,
                rule: "no-cast",
                scope: t.enclosing_fn.clone(),
                callers: Vec::new(),
                message: format!(
                    "raw `as {next}` cast in a unit-bearing module; use `units::count`, `try_from`, or a units constructor"
                ),
            });
        }
    }
}

/// Does an identifier name its unit (or declare itself dimensionless)?
fn names_unit(ident: &str) -> bool {
    ident.split('_').any(|seg| {
        let seg = seg.to_ascii_lowercase();
        let trimmed = seg.strip_suffix('s').unwrap_or(&seg);
        UNIT_SEGMENTS.contains(&seg.as_str())
            || UNIT_SEGMENTS.contains(&trimmed)
            || DIMENSIONLESS_SEGMENTS.contains(&seg.as_str())
            || DIMENSIONLESS_SEGMENTS.contains(&trimmed)
    })
}

fn no_bare_f64(rel: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].in_test || tokens[i].word() != Some("pub") {
            i += 1;
            continue;
        }
        // pub / pub(crate) / pub(super) …
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.is_punct('(')) {
            while j < tokens.len() && !tokens[j].is_punct(')') {
                j += 1;
            }
            j += 1;
        }
        // Optional qualifiers before `fn`.
        while tokens.get(j).and_then(Token::word).is_some_and(|w| {
            matches!(w, "const" | "unsafe" | "async" | "extern")
        }) {
            j += 1;
        }
        if tokens.get(j).and_then(Token::word) != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name) = tokens.get(j + 1).and_then(Token::word).map(str::to_string) else {
            i += 1;
            continue;
        };
        let line = tokens[j + 1].line;
        // Find the parameter list.
        let mut k = j + 2;
        while k < tokens.len() && !tokens[k].is_punct('(') {
            k += 1;
        }
        let params_start = k + 1;
        let mut depth = 1;
        k += 1;
        while k < tokens.len() && depth > 0 {
            if tokens[k].is_punct('(') {
                depth += 1;
            } else if tokens[k].is_punct(')') {
                depth -= 1;
            }
            k += 1;
        }
        let params_end = k.saturating_sub(1);

        // Quantity-named bare-f64 parameters.
        for p in params_start..params_end {
            if tokens[p].is_punct(':')
                && tokens.get(p + 1).and_then(Token::word) == Some("f64")
            {
                if let Some(pname) = tokens.get(p.wrapping_sub(1)).and_then(Token::word) {
                    if QUANTITY_PARAM_NAMES.contains(&pname) {
                        findings.push(Finding {
                            file: rel.to_string(),
                            line: tokens[p].line,
                            rule: "no-bare-f64",
                            scope: Some(name.clone()),
                            callers: Vec::new(),
                            message: format!(
                                "parameter `{pname}: f64` of `pub fn {name}` is a bare quantity; take a `photonics::units` newtype"
                            ),
                        });
                    }
                }
            }
        }

        // Scalar f64 return without a unit in the function name.
        if tokens.get(k).is_some_and(Token::is_arrow)
            && tokens.get(k + 1).and_then(Token::word) == Some("f64")
            && tokens
                .get(k + 2)
                .is_some_and(|t| t.is_punct('{') || t.is_punct(';') || t.word() == Some("where"))
            && !names_unit(&name)
        {
            findings.push(Finding {
                file: rel.to_string(),
                line,
                rule: "no-bare-f64",
                scope: Some(name.clone()),
                callers: Vec::new(),
                message: format!(
                    "`pub fn {name}` returns a bare `f64`; name the unit in the identifier or return a `photonics::units` newtype"
                ),
            });
        }
        i = j + 2;
    }
}

/// A `pub enum *Error` declaration found while scanning.
#[derive(Debug, Clone)]
pub struct ErrorEnum {
    /// Repo-relative file.
    pub file: String,
    /// Declaration line.
    pub line: usize,
    /// The crate directory name (`crates/<name>`).
    pub krate: String,
    /// The enum identifier.
    pub name: String,
}

/// A trait impl sighting: `impl … Display for X` / `impl … Error for X`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraitImpl {
    /// The crate directory name.
    pub krate: String,
    /// `Display` or `Error`.
    pub trait_name: String,
    /// The implementing type.
    pub type_name: String,
}

/// Collect public error enums and Display/Error impls from one file.
pub fn collect_error_decls(
    rel: &str,
    krate: &str,
    tokens: &[Token],
    enums: &mut Vec<ErrorEnum>,
    impls: &mut Vec<TraitImpl>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test {
            continue;
        }
        match t.word() {
            Some("enum")
                if i > 0
                    && tokens[i - 1].word() == Some("pub")
                    && tokens
                        .get(i + 1)
                        .and_then(Token::word)
                        .is_some_and(|n| n.ends_with("Error")) =>
            {
                if let Some(name) = tokens.get(i + 1).and_then(Token::word) {
                    enums.push(ErrorEnum {
                        file: rel.to_string(),
                        line: t.line,
                        krate: krate.to_string(),
                        name: name.to_string(),
                    });
                }
            }
            Some("impl") => {
                // Scan a short window for `<trait tokens> for <Type>`.
                let window = &tokens[i..tokens.len().min(i + 24)];
                let Some(for_pos) = window.iter().position(|t| t.word() == Some("for")) else {
                    continue;
                };
                let head: Vec<&str> =
                    window[..for_pos].iter().filter_map(Token::word).collect();
                let Some(type_name) = window.get(for_pos + 1).and_then(Token::word) else {
                    continue;
                };
                for trait_name in ["Display", "Error"] {
                    if head.contains(&trait_name) {
                        impls.push(TraitImpl {
                            krate: krate.to_string(),
                            trait_name: trait_name.to_string(),
                            type_name: type_name.to_string(),
                        });
                    }
                }
            }
            _ => {}
        }
    }
}

/// Cross-file rule: every public error enum implements `Display` and
/// `std::error::Error` somewhere in its crate.
pub fn check_error_impls(enums: &[ErrorEnum], impls: &[TraitImpl]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for e in enums {
        for trait_name in ["Display", "Error"] {
            let covered = impls.iter().any(|im| {
                im.krate == e.krate && im.trait_name == trait_name && im.type_name == e.name
            });
            if !covered {
                findings.push(Finding {
                    file: e.file.clone(),
                    line: e.line,
                    rule: "error-impl",
                    scope: None,
                    callers: Vec::new(),
                    message: format!(
                        "`pub enum {}` has no `{}` impl in crate `{}`",
                        e.name,
                        if trait_name == "Error" { "std::error::Error" } else { "Display" },
                        e.krate
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{mask, tokenize};

    fn toks(src: &str) -> Vec<Token> {
        tokenize(&mask(src))
    }

    #[test]
    fn unwrap_in_library_code_is_flagged() {
        let f = check_file("crates/arch/src/engine.rs", &toks("fn f() { x.unwrap(); }"));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-panic");
        assert_eq!(f[0].scope.as_deref(), Some("f"));
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); }";
        assert!(check_file("crates/arch/src/engine.rs", &toks(src)).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); panic!(); } }";
        assert!(check_file("crates/arch/src/engine.rs", &toks(src)).is_empty());
    }

    #[test]
    fn asserts_are_allowed() {
        let src = "fn f() { assert!(x > 0); assert_eq!(a, b); debug_assert!(c); }";
        assert!(check_file("crates/arch/src/engine.rs", &toks(src)).is_empty());
    }

    #[test]
    fn casts_flagged_only_in_unit_bearing_modules() {
        let src = "fn f(n: usize) { let x = n as f64; }";
        assert!(check_file("crates/workload/src/zoo.rs", &toks(src)).is_empty());
        let f = check_file("crates/photonics/src/laser.rs", &toks(src));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-cast");
    }

    #[test]
    fn as_import_rename_is_not_a_cast() {
        let src = "use std::fmt as formatting;";
        assert!(check_file("crates/photonics/src/laser.rs", &toks(src)).is_empty());
    }

    #[test]
    fn bare_f64_return_needs_a_unit_name() {
        let bad = "pub fn energy(&self) -> f64 { 0.0 }";
        let good = "pub fn energy_pj(&self) -> f64 { 0.0 }";
        let dimless = "pub fn coupling_factor(&self) -> f64 { 0.0 }";
        assert_eq!(check_file("crates/photonics/src/laser.rs", &toks(bad)).len(), 1);
        assert!(check_file("crates/photonics/src/laser.rs", &toks(good)).is_empty());
        assert!(check_file("crates/photonics/src/laser.rs", &toks(dimless)).is_empty());
    }

    #[test]
    fn quantity_params_must_be_newtypes() {
        let src = "pub fn charge(&mut self, energy: f64) {}";
        let f = check_file("crates/photonics/src/ledger.rs", &toks(src));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("energy"));
    }

    #[test]
    fn vec_and_tuple_returns_are_exempt() {
        let src = "pub fn samples(&self) -> Vec<f64> { vec![] }\npub fn pair(&self) -> (f64, f64) { (0.0, 0.0) }";
        assert!(check_file("crates/photonics/src/laser.rs", &toks(src)).is_empty());
    }

    #[test]
    fn pcm_stat_module_is_unit_bearing() {
        assert!(is_unit_bearing("crates/pcm/src/stat.rs"));
        // The rest of the pcm crate keeps its crystallinity-space API.
        assert!(!is_unit_bearing("crates/pcm/src/gst.rs"));
    }

    #[test]
    fn error_enum_without_impls_is_flagged() {
        let mut enums = Vec::new();
        let mut impls = Vec::new();
        collect_error_decls(
            "crates/x/src/error.rs",
            "x",
            &toks("pub enum XError { A }"),
            &mut enums,
            &mut impls,
        );
        let f = check_error_impls(&enums, &impls);
        assert_eq!(f.len(), 2, "missing Display and Error: {f:?}");
    }

    #[test]
    fn error_enum_with_both_impls_is_clean() {
        let src = "pub enum XError { A }\nimpl fmt::Display for XError { }\nimpl std::error::Error for XError { }";
        let mut enums = Vec::new();
        let mut impls = Vec::new();
        collect_error_decls("crates/x/src/error.rs", "x", &toks(src), &mut enums, &mut impls);
        assert!(check_error_impls(&enums, &impls).is_empty());
    }
}
