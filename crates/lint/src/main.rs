//! `trident-lint` CLI.
//!
//! ```text
//! trident-lint [--root PATH] [--format text|json] [--allowlist PATH]
//! ```
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    format: Format,
    allowlist: Option<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        format: Format::Text,
        allowlist: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root =
                    PathBuf::from(it.next().ok_or("--root needs a path argument")?);
            }
            "--allowlist" => {
                args.allowlist =
                    Some(PathBuf::from(it.next().ok_or("--allowlist needs a path argument")?));
            }
            "--format" => match it.next().as_deref() {
                Some("text") => args.format = Format::Text,
                Some("json") => args.format = Format::Json,
                other => {
                    return Err(format!(
                        "--format must be `text` or `json`, got {other:?}"
                    ))
                }
            },
            "--help" | "-h" => {
                return Err("usage: trident-lint [--root PATH] [--format text|json] [--allowlist PATH]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let allow = match args.allowlist {
        Some(ref path) => match std::fs::read_to_string(path) {
            Ok(text) => match trident_lint::allowlist::parse(&text) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => match trident_lint::load_allowlist(&args.root) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        },
    };
    let report = match trident_lint::run(&args.root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match args.format {
        Format::Text => print!("{}", report.to_text()),
        Format::Json => print!("{}", report.to_json()),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
