//! `trident-lint` CLI.
//!
//! ```text
//! trident-lint [--root PATH] [--format text|json] [--allowlist PATH]
//!              [--rules LIST] [--check-allowlist]
//! ```
//!
//! `--rules` takes a comma-separated list of rule ids and/or family
//! names (`panic`, `units`, `error`, `determinism`, `stream`); the
//! default is every rule. `--check-allowlist` additionally fails the
//! run when the allowlist has stale entries or exceeds the
//! 10-entry budget.
//!
//! Exit codes: 0 = clean, 1 = findings (or allowlist debt under
//! `--check-allowlist`), 2 = usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;
use trident_lint::{RuleFilter, ALLOWLIST_BUDGET};

struct Args {
    root: PathBuf,
    format: Format,
    allowlist: Option<PathBuf>,
    rules: RuleFilter,
    check_allowlist: bool,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        format: Format::Text,
        allowlist: None,
        rules: RuleFilter::all(),
        check_allowlist: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root =
                    PathBuf::from(it.next().ok_or("--root needs a path argument")?);
            }
            "--allowlist" => {
                args.allowlist =
                    Some(PathBuf::from(it.next().ok_or("--allowlist needs a path argument")?));
            }
            "--rules" => {
                let spec = it.next().ok_or("--rules needs a comma-separated list")?;
                args.rules = RuleFilter::parse(&spec)?;
            }
            "--check-allowlist" => args.check_allowlist = true,
            "--format" => match it.next().as_deref() {
                Some("text") => args.format = Format::Text,
                Some("json") => args.format = Format::Json,
                other => {
                    return Err(format!(
                        "--format must be `text` or `json`, got {other:?}"
                    ))
                }
            },
            "--help" | "-h" => {
                return Err(
                    "usage: trident-lint [--root PATH] [--format text|json] [--allowlist PATH] [--rules LIST] [--check-allowlist]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let allow = match args.allowlist {
        Some(ref path) => match std::fs::read_to_string(path) {
            Ok(text) => match trident_lint::allowlist::parse(&text) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => match trident_lint::load_allowlist(&args.root) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        },
    };
    let report = match trident_lint::run_filtered(&args.root, &allow, &args.rules) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match args.format {
        Format::Text => print!("{}", report.to_text()),
        Format::Json => print!("{}", report.to_json()),
    }
    let mut failed = !report.is_clean();
    if args.check_allowlist {
        if allow.len() > ALLOWLIST_BUDGET {
            eprintln!(
                "lint-allow.toml: {} entries exceed the budget of {ALLOWLIST_BUDGET}; \
                 pay down exemptions before adding more",
                allow.len()
            );
            failed = true;
        }
        if !report.stale_allows.is_empty() {
            for e in &report.stale_allows {
                eprintln!(
                    "lint-allow.toml: stale entry for {} ({:?}) — covers nothing, delete it",
                    e.file, e.rules
                );
            }
            failed = true;
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
