//! Determinism rules.
//!
//! The repro contract (DESIGN.md, `repro_all`) is byte-identity: every
//! table and trace must be a pure function of the config and seeds, at
//! any thread count, with or without tracing. These rules reject the
//! four ways that contract silently breaks:
//!
//! | rule             | scope                    | what it rejects                         |
//! |------------------|--------------------------|-----------------------------------------|
//! | `det-hash-iter`  | output-affecting crates  | `HashMap`/`HashSet` (iteration order is hash-state-dependent; use `BTreeMap`/`BTreeSet`) |
//! | `det-wall-clock` | everywhere but `obs/clock.rs` | `Instant::now` / `SystemTime::now` (route time through `obs`'s `Clock` trait) |
//! | `det-thread-env` | everywhere scanned       | `available_parallelism` / `thread::current` (results must not depend on core count or thread identity) |
//! | `det-raw-thread` | output-affecting crates  | `thread::spawn` / `thread::scope` (float reductions must go through the vendored rayon facade's ordered folds) |
//!
//! "Output-affecting" means the crate computes numbers that land in a
//! report, table, or trace payload: everything except the linter itself,
//! the bench harness, and `obs` (whose wall-clock and thread-ordinal
//! use is presentation metadata, confined to `clock.rs` /
//! thread-locals, and excluded from byte-identity by design).

use crate::rules::Finding;
use crate::scanner::Token;

/// Crate directories whose code paths feed the repro'd outputs.
pub const OUTPUT_AFFECTING: &[&str] = &[
    "arch", "baselines", "core", "nn", "pcm", "photonics", "serve", "streams", "workload",
];

/// The one file allowed to read the wall clock: the `Clock` trait's
/// real implementation.
pub const WALL_CLOCK_HOME: &str = "crates/obs/src/clock.rs";

/// Is this repo-relative path inside an output-affecting crate?
pub fn is_output_affecting(rel: &str) -> bool {
    let p = rel.replace('\\', "/");
    p.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .is_some_and(|krate| OUTPUT_AFFECTING.contains(&krate))
}

/// Run the determinism rules over one tokenized file. `enabled` gates
/// each rule id.
pub fn check_file(
    rel: &str,
    tokens: &[Token],
    enabled: impl Fn(&str) -> bool,
    findings: &mut Vec<Finding>,
) {
    let output_affecting = is_output_affecting(rel);
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(word) = t.word() else { continue };
        // `X::y` = Word(X) Punct(':') Punct(':') Word(y).
        let path_next = |from: usize| -> Option<&str> {
            if tokens.get(from + 1).is_some_and(|p| p.is_punct(':'))
                && tokens.get(from + 2).is_some_and(|p| p.is_punct(':'))
            {
                tokens.get(from + 3).and_then(Token::word)
            } else {
                None
            }
        };
        match word {
            "HashMap" | "HashSet" if enabled("det-hash-iter") && output_affecting => {
                findings.push(finding(
                    rel,
                    t,
                    "det-hash-iter",
                    format!(
                        "`{word}` in an output-affecting crate; iteration order depends on \
                         hash state — use `BTree{}`",
                        &word[4..]
                    ),
                ));
            }
            "Instant" | "SystemTime"
                if enabled("det-wall-clock")
                    && rel != WALL_CLOCK_HOME
                    && path_next(i) == Some("now") =>
            {
                findings.push(finding(
                    rel,
                    t,
                    "det-wall-clock",
                    format!(
                        "`{word}::now()` outside `{WALL_CLOCK_HOME}`; take a `Clock` from \
                         `trident-obs` so traces replay deterministically"
                    ),
                ));
            }
            "available_parallelism" if enabled("det-thread-env") => {
                findings.push(finding(
                    rel,
                    t,
                    "det-thread-env",
                    "`available_parallelism()` makes results depend on the host's core \
                     count; thread count must come from explicit config"
                        .to_string(),
                ));
            }
            "thread"
                if enabled("det-thread-env") && path_next(i) == Some("current") =>
            {
                findings.push(finding(
                    rel,
                    t,
                    "det-thread-env",
                    "`thread::current()` identity must not influence results; derive \
                     per-worker behaviour from explicit shard indices"
                        .to_string(),
                ));
            }
            "thread"
                if enabled("det-raw-thread")
                    && output_affecting
                    && matches!(path_next(i), Some("spawn") | Some("scope")) =>
            {
                let callee = path_next(i).unwrap_or("spawn");
                findings.push(finding(
                    rel,
                    t,
                    "det-raw-thread",
                    format!(
                        "raw `thread::{callee}` in an output-affecting crate; float \
                         reductions must flow through the vendored rayon facade's ordered \
                         folds (or reassemble results in a schedule-independent order)"
                    ),
                ));
            }
            _ => {}
        }
    }
}

fn finding(rel: &str, t: &Token, rule: &'static str, message: String) -> Finding {
    Finding {
        file: rel.to_string(),
        line: t.line,
        rule,
        scope: t.enclosing_fn.clone(),
        callers: Vec::new(),
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{mask, tokenize};

    fn check(rel: &str, src: &str) -> Vec<Finding> {
        let tokens = tokenize(&mask(src));
        let mut out = Vec::new();
        check_file(rel, &tokens, |_| true, &mut out);
        out
    }

    #[test]
    fn hash_map_flagged_only_in_output_affecting_crates() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let hits = check("crates/arch/src/cache.rs", src);
        assert!(hits.iter().all(|f| f.rule == "det-hash-iter"));
        assert_eq!(hits.len(), 3);
        assert!(check("crates/lint/src/rules.rs", src).is_empty());
    }

    #[test]
    fn btree_map_is_sanctioned() {
        let src = "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }";
        assert!(check("crates/arch/src/cache.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_reads_are_flagged_outside_the_clock_home() {
        let src = "fn stamp() -> std::time::Instant { std::time::Instant::now() }";
        let hits = check("crates/workload/src/timing.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "det-wall-clock");
        assert_eq!(hits[0].scope.as_deref(), Some("stamp"));
        assert!(check(WALL_CLOCK_HOME, src).is_empty(), "clock.rs is the sanctioned home");
    }

    #[test]
    fn instant_type_annotations_alone_are_not_flagged() {
        let src = "fn keep(t: std::time::Instant) -> std::time::Instant { t }";
        assert!(check("crates/workload/src/timing.rs", src).is_empty());
    }

    #[test]
    fn system_time_now_is_flagged() {
        let src = "fn f() { let _ = std::time::SystemTime::now(); }";
        assert_eq!(check("crates/serve/src/shards.rs", src).len(), 1);
    }

    #[test]
    fn thread_env_probes_are_flagged_everywhere() {
        let src = "fn f() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }";
        let hits = check("crates/lint/src/lib.rs", src);
        assert!(hits.iter().any(|f| f.rule == "det-thread-env"), "{hits:?}");
        let src2 = "fn f() { let id = std::thread::current().id(); }";
        assert!(check("crates/obs/src/span.rs", src2)
            .iter()
            .any(|f| f.rule == "det-thread-env"));
    }

    #[test]
    fn raw_threads_flagged_only_in_output_affecting_crates() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        let hits = check("crates/serve/src/shards.rs", src);
        assert_eq!(hits.iter().filter(|f| f.rule == "det-raw-thread").count(), 1);
        assert!(check("crates/obs/src/span.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { use std::collections::HashMap; fn t() { let _ = std::time::Instant::now(); } }";
        assert!(check("crates/arch/src/cache.rs", src).is_empty());
    }

    #[test]
    fn rule_gating_is_respected() {
        let src = "use std::collections::HashMap;";
        let tokens = tokenize(&mask(src));
        let mut out = Vec::new();
        check_file("crates/arch/src/cache.rs", &tokens, |r| r != "det-hash-iter", &mut out);
        assert!(out.is_empty());
    }
}
