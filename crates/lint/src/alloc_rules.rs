//! The hot-path allocation rule.
//!
//! | rule             | scope                              | what it rejects |
//! |------------------|------------------------------------|-----------------|
//! | `hot-path-alloc` | serving hot path (`arch`/`nn`/`serve`) | `vec![…]`, `Vec::with_capacity`, `.collect()` in functions reachable from the serving entry points |
//!
//! The zero-alloc steady-state contract (DESIGN.md §15) says a warmed
//! replica executes a closed batch with **zero** heap allocation: every
//! buffer the forward pass touches is pre-sized scratch, reused across
//! dispatches. The runtime proof is the engines' `hot_path_allocs()`
//! counters; this rule is the static half — it walks the call graph
//! *forward* from the serving entry points ([`ENTRY_POINTS`]) and flags
//! the allocation idioms that silently reintroduce per-request heap
//! traffic.
//!
//! Sanctioned boundaries are pruned from the walk (and never flagged),
//! because allocation is *correct* there:
//!
//! * **construction & warm-up** — `new*`/`with_*`/`from_*`/`build*`/
//!   `try_build*`/`default`/`reserve*` run once per fleet, before the
//!   first request; growing scratch to capacity is their whole job.
//! * **the device model** — `mvm_unsigned` / `latch_and_activate` /
//!   `outer_product` model the photonic crossbar's internal dataflow
//!   (per-tile optics, LDSU latches); their temporaries stand in for
//!   hardware registers, not host memory (DESIGN.md §15).
//! * **the arena** — `take` / `give` are the sanctioned allocator: a
//!   slab miss growing the pool *is* the warm-up path, and it is what
//!   the `HotPathAllocs` gauge counts.
//!
//! `Vec::new()` is deliberately not flagged: an empty `Vec` does not
//! touch the heap, and the reuse idiom (`std::mem::take` a scratch
//! field, refill it in place) pivots on exactly that.

use crate::callgraph::CallGraph;
use crate::rules::Finding;
use crate::scanner::Token;

/// Crate directories whose code executes per served request — the only
/// places the rule fires. `obs` is excluded on purpose: its counters
/// are `enabled()`-gated no-ops in production serving, and `core`/
/// `workload` assemble experiments, not requests.
pub const HOT_PATH_CRATES: &[&str] = &["arch", "nn", "serve"];

/// The serving entry points the forward walk starts from: the fleet
/// dispatchers, the engines' batched forwards, and the arena forward.
pub const ENTRY_POINTS: &[&str] = &[
    "dispatch",
    "dispatch_into",
    "try_forward_batch",
    "try_forward_stage_into",
    "forward_into",
    "try_forward_in",
];

/// Name prefixes pruned from the walk: construction and warm-up code,
/// where allocation is the point. `zeros` is `Tensor::zeros`, a
/// constructor in all but prefix.
const STOP_PREFIXES: &[&str] = &["new", "with_", "from_", "build", "try_build", "reserve"];

/// Exact names pruned from the walk: the device-model boundary, the
/// arena's sanctioned allocator surface, and `zeros` (a constructor).
/// `mvm` / `mvm_signed` are the bank's raw and dual-rail optical reads
/// and `program_flat` the GST write pulse train — the same device-model
/// category as `mvm_unsigned`: their temporaries stand in for on-chip
/// dataflow, not host memory.
const STOP_NAMES: &[&str] = &[
    "default", "mvm", "mvm_unsigned", "mvm_signed", "latch_and_activate", "outer_product",
    "program_flat", "take", "give", "zeros",
];

/// Names whose call edges are meaningless under name-based resolution:
/// iterator-adapter and container methods (`.map(…)`, `.filter(…)`, …)
/// produce edges to any same-named `fn` in the walk — e.g. every
/// `.map()` adapter would drag in `Tensor::map`. Pruning them keeps the
/// reachable set honest; a *defined* hot-path helper should not shadow
/// a std name anyway.
const STD_COLLIDING: &[&str] = &[
    "map", "filter", "fold", "zip", "sum", "get", "insert", "push", "extend", "clear",
    "len", "iter", "last", "first", "position", "min", "max", "abs", "clone",
];

/// Is this function name a sanctioned allocation boundary (or a name
/// the walk must not resolve through)?
pub fn is_boundary(name: &str) -> bool {
    STOP_PREFIXES.iter().any(|p| name.starts_with(p))
        || STOP_NAMES.contains(&name)
        || STD_COLLIDING.contains(&name)
}

/// Is this repo-relative path on the serving hot path?
pub fn is_hot_path_crate(rel: &str) -> bool {
    let p = rel.replace('\\', "/");
    p.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .is_some_and(|krate| HOT_PATH_CRATES.contains(&krate))
}

/// Run the rule over the whole scan: compute the reachable set once,
/// then flag allocation idioms inside reachable functions.
pub fn check(scans: &[(String, Vec<Token>)], graph: &CallGraph, findings: &mut Vec<Finding>) {
    let reachable = graph.reachable_from(ENTRY_POINTS, &|name| is_boundary(name));
    for (rel, tokens) in scans {
        if !is_hot_path_crate(rel) {
            continue;
        }
        for (i, t) in tokens.iter().enumerate() {
            if t.in_test {
                continue;
            }
            let Some(scope) = t.enclosing_fn.as_deref() else { continue };
            if !reachable.contains(scope) {
                continue;
            }
            let Some(word) = t.word() else { continue };
            let next_is = |c: char| tokens.get(i + 1).is_some_and(|n| n.is_punct(c));
            // `Vec::with_capacity` = Word(Vec) ':' ':' Word(with_capacity).
            let path_next = || -> Option<&str> {
                if next_is(':') && tokens.get(i + 2).is_some_and(|p| p.is_punct(':')) {
                    tokens.get(i + 3).and_then(Token::word)
                } else {
                    None
                }
            };
            let idiom = match word {
                "vec" if next_is('!') => Some("`vec![…]`"),
                "Vec" if path_next() == Some("with_capacity") => Some("`Vec::with_capacity`"),
                "collect"
                    if i > 0
                        && tokens[i - 1].is_punct('.')
                        && (next_is('(') || next_is(':')) =>
                {
                    Some("`.collect()`")
                }
                _ => None,
            };
            if let Some(idiom) = idiom {
                findings.push(Finding {
                    file: rel.clone(),
                    line: t.line,
                    rule: "hot-path-alloc",
                    scope: Some(scope.to_string()),
                    callers: Vec::new(),
                    message: format!(
                        "{idiom} in `{scope}`, reachable from a serving entry point; the \
                         steady-state dispatch contract is zero heap allocation — reuse a \
                         pre-sized scratch buffer (clear + extend in place) or size it in a \
                         `reserve_*` warm-up"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::scanner::{mask, tokenize};

    fn check_src(files: &[(&str, &str)]) -> Vec<Finding> {
        let scans: Vec<(String, Vec<Token>)> = files
            .iter()
            .map(|(rel, src)| ((*rel).to_string(), tokenize(&mask(src))))
            .collect();
        let graph =
            callgraph::build(scans.iter().map(|(rel, toks)| (rel.as_str(), toks.as_slice())));
        let mut out = Vec::new();
        check(&scans, &graph, &mut out);
        out
    }

    #[test]
    fn allocation_in_a_reachable_helper_is_flagged() {
        let hits = check_src(&[(
            "crates/serve/src/fleet.rs",
            "pub fn dispatch_into(n: usize) { stage(n); }\n\
             fn stage(n: usize) { let v = vec![0.0; n]; drop(v); }",
        )]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "hot-path-alloc");
        assert_eq!(hits[0].scope.as_deref(), Some("stage"));
    }

    #[test]
    fn all_three_idioms_fire_inside_an_entry_point() {
        let hits = check_src(&[(
            "crates/arch/src/engine.rs",
            "pub fn try_forward_batch(n: usize) {\n\
               let a = vec![0u8; n];\n\
               let b: Vec<u8> = Vec::with_capacity(n);\n\
               let c: Vec<u8> = a.iter().copied().collect();\n\
               drop((b, c));\n\
             }",
        )]);
        let idioms: Vec<&str> = hits.iter().map(|f| f.rule).collect();
        assert_eq!(idioms, ["hot-path-alloc"; 3], "{hits:?}");
    }

    #[test]
    fn constructors_and_device_model_are_boundaries() {
        let hits = check_src(&[(
            "crates/arch/src/engine.rs",
            "pub fn try_forward_batch(n: usize) { mvm_unsigned(n); with_scratch(n); }\n\
             fn mvm_unsigned(n: usize) { let v = vec![0.0; n]; drop(v); }\n\
             fn with_scratch(n: usize) { let v: Vec<u8> = Vec::with_capacity(n); drop(v); }",
        )]);
        assert!(hits.is_empty(), "boundary fns must not be flagged: {hits:?}");
    }

    #[test]
    fn unreachable_functions_may_allocate() {
        let hits = check_src(&[(
            "crates/nn/src/network.rs",
            "pub fn train_step(n: usize) -> Vec<usize> { (0..n).collect() }",
        )]);
        assert!(hits.is_empty(), "training code is off the hot path: {hits:?}");
    }

    #[test]
    fn non_hot_path_crates_are_out_of_scope() {
        let hits = check_src(&[(
            "crates/core/src/experiments/tables.rs",
            "pub fn dispatch_into(n: usize) -> Vec<usize> { (0..n).collect() }",
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn vec_new_is_sanctioned() {
        let hits = check_src(&[(
            "crates/serve/src/fleet.rs",
            "pub fn dispatch_into() { let v: Vec<u8> = Vec::new(); drop(v); }",
        )]);
        assert!(hits.is_empty(), "empty Vec::new is heap-free: {hits:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let hits = check_src(&[(
            "crates/serve/src/fleet.rs",
            "#[cfg(test)]\nmod tests { fn try_forward_batch(n: usize) { let v = vec![0; n]; drop(v); } }",
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }
}
