//! A lightweight, name-based call graph over the scanned workspace.
//!
//! The determinism and stream-hygiene rules often fire inside small
//! private helpers (`stamp_ns`, `tally`), where the report line alone
//! does not tell a reader which deterministic-core entry point is
//! contaminated. The call graph answers that: it records every `fn`
//! definition and every `name(` call site from the same token stream
//! the rules already consume, then walks callers backwards so a finding
//! can say "reached from `crates/arch/src/cache.rs::render_report`".
//!
//! Resolution is by *name*, not by type: a call to `update` links to
//! every `fn update` in the walk. That over-approximates — exactly what
//! attribution wants (a false extra caller is noise; a missed caller is
//! a hole) — and keeps the builder zero-dependency and trivially
//! deterministic: all containers are `BTreeMap`/`BTreeSet`, so edge
//! order never depends on hash state or file discovery order.
//!
//! Test code (`#[cfg(test)]`) contributes neither definitions nor
//! edges: reachability from a test is not production reachability.

use crate::scanner::Token;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One `fn` definition site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnDef {
    /// Repo-relative file, forward slashes.
    pub file: String,
    /// The function identifier.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// Keywords and call-like constructs that must not become call edges.
const NOT_CALLS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else",
    "enum", "extern", "fn", "for", "if", "impl", "in", "let", "loop", "macro", "match",
    "mod", "move", "mut", "pub", "ref", "return", "self", "static", "struct", "super",
    "trait", "type", "union", "unsafe", "use", "where", "while", "yield",
];

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Function name → definition sites (names are not unique repo-wide).
    defs: BTreeMap<String, BTreeSet<FnDef>>,
    /// Callee name → (caller file, caller fn) pairs.
    callers: BTreeMap<String, BTreeSet<(String, String)>>,
    /// Caller fn name → callee names: the forward edges, for
    /// [`CallGraph::reachable_from`]. Only calls made from inside a
    /// function body contribute (same rule as `callers`).
    callees: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    /// Fold one tokenized file into the graph.
    pub fn add_file(&mut self, rel: &str, tokens: &[Token]) {
        for (i, t) in tokens.iter().enumerate() {
            if t.in_test {
                continue;
            }
            let Some(word) = t.word() else { continue };
            if word == "fn" {
                if let Some(name) = tokens.get(i + 1).and_then(Token::word) {
                    self.defs.entry(name.to_string()).or_default().insert(FnDef {
                        file: rel.to_string(),
                        name: name.to_string(),
                        line: t.line,
                    });
                }
                continue;
            }
            // A call edge: lowercase identifier immediately followed by
            // `(`, not a keyword, not itself a definition (`fn name(`).
            if !word.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
                || NOT_CALLS.contains(&word)
                || !tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                || (i > 0 && tokens[i - 1].word() == Some("fn"))
            {
                continue;
            }
            // Only calls made *from inside* some function body are edges;
            // const-initializer expressions have no caller to attribute.
            let Some(caller) = t.enclosing_fn.clone() else { continue };
            // A function's self-recursion is not useful attribution.
            if caller == word {
                continue;
            }
            self.callers
                .entry(word.to_string())
                .or_default()
                .insert((rel.to_string(), caller.clone()));
            self.callees.entry(caller).or_default().insert(word.to_string());
        }
    }

    /// All definition sites of `name`, in deterministic order.
    pub fn defs_of(&self, name: &str) -> Vec<&FnDef> {
        self.defs.get(name).map(|s| s.iter().collect()).unwrap_or_default()
    }

    /// Every edge as `(callee, caller_file, caller_fn)`, deterministically
    /// ordered. Exists for tests (edge stability under reformatting).
    pub fn edges(&self) -> Vec<(String, String, String)> {
        self.callers
            .iter()
            .flat_map(|(callee, callers)| {
                callers
                    .iter()
                    .map(move |(file, f)| (callee.clone(), file.clone(), f.clone()))
            })
            .collect()
    }

    /// Number of distinct function names with at least one definition.
    pub fn def_count(&self) -> usize {
        self.defs.len()
    }

    /// Transitive callers of `func` as `"file::fn"` strings, breadth
    /// first (direct callers before their callers), capped at `limit`.
    /// Deterministic: ties resolve in `BTreeSet` order.
    pub fn reaching_callers(&self, func: &str, limit: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut seen_nodes: BTreeSet<(String, String)> = BTreeSet::new();
        let mut visited_names: BTreeSet<String> = BTreeSet::new();
        let mut queue: VecDeque<String> = VecDeque::new();
        queue.push_back(func.to_string());
        while let Some(name) = queue.pop_front() {
            if out.len() >= limit || !visited_names.insert(name.clone()) {
                continue;
            }
            let Some(callers) = self.callers.get(&name) else { continue };
            for (file, caller) in callers {
                if caller == func {
                    continue;
                }
                if seen_nodes.insert((file.clone(), caller.clone())) {
                    out.push(format!("{file}::{caller}"));
                    if out.len() >= limit {
                        return out;
                    }
                    queue.push_back(caller.clone());
                }
            }
        }
        out
    }

    /// Forward reachability: every function *name* reachable from
    /// `entries` through call edges, including the entries themselves.
    /// `stop` prunes the walk — a stopped name is neither included nor
    /// expanded, which is how callers carve out sanctioned boundaries
    /// (constructors, the device model). Name-based like everything
    /// here, so the set over-approximates: exactly what a "must not
    /// allocate" rule wants (a false extra reachable fn is a finding a
    /// human reviews once; a missed one is a silent hole).
    pub fn reachable_from(
        &self,
        entries: &[&str],
        stop: &dyn Fn(&str) -> bool,
    ) -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue: VecDeque<String> =
            entries.iter().map(|s| (*s).to_string()).collect();
        while let Some(name) = queue.pop_front() {
            if stop(&name) || !seen.insert(name.clone()) {
                continue;
            }
            if let Some(callees) = self.callees.get(&name) {
                for callee in callees {
                    if !seen.contains(callee) {
                        queue.push_back(callee.clone());
                    }
                }
            }
        }
        seen
    }

    /// True when `tokens` never mention `fn` outside tests — used by the
    /// builder tests to sanity-check fixtures, not by the rules.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty() && self.callers.is_empty()
    }
}

/// Build a graph from already-tokenized files.
pub fn build<'a>(files: impl IntoIterator<Item = (&'a str, &'a [Token])>) -> CallGraph {
    let mut g = CallGraph::default();
    for (rel, tokens) in files {
        g.add_file(rel, tokens);
    }
    g
}

/// Convenience for tests: tokenize source text and fold it in.
pub fn add_source(graph: &mut CallGraph, rel: &str, src: &str) {
    let tokens = crate::scanner::tokenize(&crate::scanner::mask(src));
    graph.add_file(rel, &tokens);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let mut g = CallGraph::default();
        for (rel, src) in files {
            add_source(&mut g, rel, src);
        }
        g
    }

    #[test]
    fn direct_calls_become_edges() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn outer() { helper(1); }\nfn helper(x: u32) -> u32 { x }",
        )]);
        assert_eq!(
            g.reaching_callers("helper", 8),
            vec!["crates/a/src/lib.rs::outer"]
        );
    }

    #[test]
    fn transitive_callers_are_breadth_first_and_capped() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}",
        )]);
        assert_eq!(
            g.reaching_callers("leaf", 8),
            vec!["crates/a/src/lib.rs::mid", "crates/a/src/lib.rs::top"]
        );
        assert_eq!(g.reaching_callers("leaf", 1), vec!["crates/a/src/lib.rs::mid"]);
    }

    #[test]
    fn cross_file_resolution_is_by_name() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn consumer() { stamp_ns(); }"),
            ("crates/b/src/timing.rs", "pub fn stamp_ns() -> u64 { 0 }"),
        ]);
        assert_eq!(
            g.reaching_callers("stamp_ns", 8),
            vec!["crates/a/src/lib.rs::consumer"]
        );
        assert_eq!(g.defs_of("stamp_ns").len(), 1);
    }

    #[test]
    fn keywords_and_defs_are_not_calls() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn f(x: u32) { if (x > 0) { } match (x) { _ => {} } let y = (x); }",
        )]);
        assert!(g.edges().is_empty(), "edges: {:?}", g.edges());
    }

    #[test]
    fn uppercase_constructors_are_not_calls() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn f() -> Option<u32> { Some(3) }",
        )]);
        assert!(g.edges().is_empty(), "edges: {:?}", g.edges());
    }

    #[test]
    fn test_code_contributes_nothing() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn helper() {}\n#[cfg(test)]\nmod tests { fn t() { helper(); } }",
        )]);
        assert!(g.reaching_callers("helper", 8).is_empty());
    }

    #[test]
    fn self_recursion_is_not_attribution() {
        let g = graph(&[("crates/a/src/lib.rs", "fn gcd(a: u64, b: u64) -> u64 { gcd(b, a) }")]);
        assert!(g.reaching_callers("gcd", 8).is_empty());
    }

    #[test]
    fn forward_reachability_walks_transitively_and_stops_at_boundaries() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn dispatch() { stage(); }\nfn stage() { fill(); new_buf(); }\n\
             fn fill() {}\nfn new_buf() {}\nfn unrelated() { fill(); }",
        )]);
        let reach = g.reachable_from(&["dispatch"], &|n| n.starts_with("new"));
        assert!(reach.contains("dispatch"));
        assert!(reach.contains("stage"));
        assert!(reach.contains("fill"));
        assert!(!reach.contains("new_buf"), "stopped names are excluded");
        assert!(!reach.contains("unrelated"), "callers of shared helpers stay out");
    }

    #[test]
    fn forward_reachability_survives_cycles() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn ping() { pong(); }\nfn pong() { ping(); leaf(); }\nfn leaf() {}",
        )]);
        let reach = g.reachable_from(&["ping"], &|_| false);
        assert!(reach.contains("ping") && reach.contains("pong") && reach.contains("leaf"));
    }

    #[test]
    fn mutual_recursion_terminates() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn ping() { pong(); }\nfn pong() { ping(); }\nfn user() { ping(); }",
        )]);
        let callers = g.reaching_callers("ping", 8);
        assert!(callers.contains(&"crates/a/src/lib.rs::pong".to_string()));
        assert!(callers.contains(&"crates/a/src/lib.rs::user".to_string()));
    }
}
