//! trident-lint: the repo's own invariant linter.
//!
//! Walks `crates/*/src` and enforces the invariants the energy/latency
//! model depends on (see DESIGN.md §"Static analysis & dimensional
//! safety"):
//!
//! 1. **no-panic** — no `unwrap`/`expect`/`panic!`-family macros in
//!    non-test library code. Documented panic front-doors over `try_*`
//!    APIs are exempted per function via `lint-allow.toml`.
//! 2. **no-cast** — no raw `as` numeric casts in unit-bearing modules;
//!    integer populations enter float arithmetic through
//!    `photonics::units::count`, float→index conversions through
//!    `index_clamped`.
//! 3. **no-bare-f64** — public quantity-returning functions in
//!    unit-bearing modules either return a `photonics::units` newtype or
//!    name their unit in the identifier; quantity-named `f64` parameters
//!    are rejected outright.
//! 4. **error-impl** — every `pub enum *Error` implements both `Display`
//!    and `std::error::Error`.
//!
//! Self-contained by design: no dependencies, a hand-rolled token
//! scanner, and a hand-rolled parser for the tiny TOML subset of
//! `lint-allow.toml`. The linter also lints itself — this crate's own
//! sources are part of the walk.

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod allowlist;
pub mod report;
pub mod rules;
pub mod scanner;

use allowlist::AllowEntry;
use report::Report;
use rules::{ErrorEnum, TraitImpl};
use std::fs;
use std::path::{Path, PathBuf};

/// A fatal error running the linter (I/O, bad allowlist).
#[derive(Debug)]
pub enum LintError {
    /// The walk or a file read failed.
    Io {
        /// Path that failed.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The allowlist did not parse.
    Allowlist(allowlist::AllowParseError),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { path, source } => write!(f, "{}: {source}", path.display()),
            Self::Allowlist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::Allowlist(e) => Some(e),
        }
    }
}

/// Run the linter over `root` (the workspace directory that contains
/// `crates/`). `allow` is the parsed allowlist.
pub fn run(root: &Path, allow: &[AllowEntry]) -> Result<Report, LintError> {
    let mut files = collect_sources(root)?;
    files.sort();
    let mut report = Report { files_scanned: files.len(), ..Default::default() };
    let mut enums: Vec<ErrorEnum> = Vec::new();
    let mut impls: Vec<TraitImpl> = Vec::new();
    let mut all: Vec<rules::Finding> = Vec::new();

    for path in &files {
        let text = fs::read_to_string(path)
            .map_err(|source| LintError::Io { path: path.clone(), source })?;
        let rel = relative(root, path);
        let krate = crate_of(&rel);
        let tokens = scanner::tokenize(&scanner::mask(&text));
        all.extend(rules::check_file(&rel, &tokens));
        rules::collect_error_decls(&rel, &krate, &tokens, &mut enums, &mut impls);
    }
    all.extend(rules::check_error_impls(&enums, &impls));

    let mut used = vec![false; allow.len()];
    for f in all {
        match allow.iter().position(|e| e.covers(&f)) {
            Some(i) => {
                used[i] = true;
                report.allowed.push(f);
            }
            None => report.findings.push(f),
        }
    }
    report.stale_allows = allow
        .iter()
        .zip(&used)
        .filter(|&(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    Ok(report)
}

/// Load and parse `lint-allow.toml` under `root`; a missing file is an
/// empty allowlist.
pub fn load_allowlist(root: &Path) -> Result<Vec<AllowEntry>, LintError> {
    let path = root.join("lint-allow.toml");
    match fs::read_to_string(&path) {
        Ok(text) => allowlist::parse(&text).map_err(LintError::Allowlist),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(source) => Err(LintError::Io { path, source }),
    }
}

/// All `.rs` files under `crates/*/src`, excluding per-crate `src/bin`
/// trees (top-level binaries may exit noisily by design).
fn collect_sources(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let entries = fs::read_dir(&crates_dir)
        .map_err(|source| LintError::Io { path: crates_dir.clone(), source })?;
    for entry in entries.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            walk(&src, &mut out)?;
        }
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    if dir.file_name().is_some_and(|n| n == "bin") {
        return Ok(());
    }
    let entries =
        fs::read_dir(dir).map_err(|source| LintError::Io { path: dir.to_path_buf(), source })?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// The crate directory name of a repo-relative path
/// (`crates/arch/src/engine.rs` → `arch`).
fn crate_of(rel: &str) -> String {
    rel.split('/').nth(1).unwrap_or("").to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_extracts_directory() {
        assert_eq!(crate_of("crates/arch/src/engine.rs"), "arch");
        assert_eq!(crate_of("crates/photonics/src/units.rs"), "photonics");
    }
}
