//! trident-lint: the repo's own invariant linter.
//!
//! Walks `crates/*/src` and enforces the invariants the energy/latency
//! model depends on (see DESIGN.md §"Static analysis & dimensional
//! safety"):
//!
//! 1. **no-panic** — no `unwrap`/`expect`/`panic!`-family macros in
//!    non-test library code. Documented panic front-doors over `try_*`
//!    APIs are exempted per function via `lint-allow.toml`.
//! 2. **no-cast** — no raw `as` numeric casts in unit-bearing modules;
//!    integer populations enter float arithmetic through
//!    `photonics::units::count`, float→index conversions through
//!    `index_clamped`.
//! 3. **no-bare-f64** — public quantity-returning functions in
//!    unit-bearing modules either return a `photonics::units` newtype or
//!    name their unit in the identifier; quantity-named `f64` parameters
//!    are rejected outright.
//! 4. **error-impl** — every `pub enum *Error` implements both `Display`
//!    and `std::error::Error`.
//! 5. **det-*** — determinism rules ([`det_rules`]): no hash-ordered
//!    iteration, wall-clock reads, core-count probes, or raw threads in
//!    the code paths that feed the byte-identical repro outputs.
//! 6. **stream-*** — RNG stream hygiene ([`stream_rules`]): `STREAM_*`
//!    ids live in the `trident-streams` registry, are unique per seed
//!    domain, and mixer call sites pass registered constants.
//! 7. **hot-path-alloc** — zero-alloc steady state ([`alloc_rules`]):
//!    no `vec!`/`Vec::with_capacity`/`.collect()` in functions the call
//!    graph reaches *forward* from the serving entry points; allocation
//!    belongs in constructors, `reserve_*` warm-up, and the device
//!    model, never per dispatched request (DESIGN.md §15).
//!
//! Findings from the determinism and stream families carry call-graph
//! attribution ([`callgraph`]): the production functions from which the
//! offending helper is reachable, so the report points at the
//! contaminated entry point and not just the helper.
//!
//! Self-contained by design: no dependencies, a hand-rolled token
//! scanner, and a hand-rolled parser for the tiny TOML subset of
//! `lint-allow.toml`. The linter also lints itself — this crate's own
//! sources are part of the walk.

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod alloc_rules;
pub mod allowlist;
pub mod callgraph;
pub mod det_rules;
pub mod report;
pub mod rules;
pub mod scanner;
pub mod stream_rules;

use allowlist::AllowEntry;
use report::Report;
use rules::{ErrorEnum, TraitImpl};
use std::fs;
use std::path::{Path, PathBuf};

/// Every rule id, in report order.
pub const ALL_RULES: &[&str] = &[
    "no-panic",
    "no-cast",
    "no-bare-f64",
    "error-impl",
    "det-hash-iter",
    "det-wall-clock",
    "det-thread-env",
    "det-raw-thread",
    "stream-local-const",
    "stream-dup",
    "stream-nonconst",
    "hot-path-alloc",
];

/// Rule families accepted by [`RuleFilter::parse`] as shorthand for
/// every rule they contain.
pub const FAMILIES: &[&str] = &["panic", "units", "error", "determinism", "stream", "alloc"];

/// Hard ceiling on `lint-allow.toml` entries. Exemptions are debt; the
/// budget keeps the file a reviewed shortlist instead of a landfill.
pub const ALLOWLIST_BUDGET: usize = 10;

/// Which rules a run executes. Built from `--rules` (ids and family
/// names, comma-separated) or [`RuleFilter::all`].
#[derive(Debug, Clone)]
pub struct RuleFilter {
    enabled: Vec<&'static str>,
}

impl RuleFilter {
    /// Every rule enabled.
    pub fn all() -> Self {
        Self { enabled: ALL_RULES.to_vec() }
    }

    /// Parse a comma-separated list of rule ids and family names.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut enabled: Vec<&'static str> = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            if let Some(&id) = ALL_RULES.iter().find(|&&r| r == part) {
                if !enabled.contains(&id) {
                    enabled.push(id);
                }
            } else if FAMILIES.contains(&part) {
                for &id in ALL_RULES.iter().filter(|&&r| rules::family_of(r) == part) {
                    if !enabled.contains(&id) {
                        enabled.push(id);
                    }
                }
            } else {
                return Err(format!(
                    "unknown rule or family `{part}` (rules: {}; families: {})",
                    ALL_RULES.join(", "),
                    FAMILIES.join(", ")
                ));
            }
        }
        if enabled.is_empty() {
            return Err("empty rule filter".to_string());
        }
        // Keep report order canonical regardless of spec order.
        enabled.sort_by_key(|id| ALL_RULES.iter().position(|r| r == id));
        Ok(Self { enabled })
    }

    /// Is the rule enabled?
    pub fn is_enabled(&self, rule: &str) -> bool {
        self.enabled.contains(&rule)
    }

    /// The enabled rule ids, in canonical order.
    pub fn rules(&self) -> &[&'static str] {
        &self.enabled
    }
}

/// A fatal error running the linter (I/O, bad allowlist).
#[derive(Debug)]
pub enum LintError {
    /// The walk or a file read failed.
    Io {
        /// Path that failed.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The allowlist did not parse.
    Allowlist(allowlist::AllowParseError),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { path, source } => write!(f, "{}: {source}", path.display()),
            Self::Allowlist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::Allowlist(e) => Some(e),
        }
    }
}

/// Run every rule over `root`. See [`run_filtered`].
pub fn run(root: &Path, allow: &[AllowEntry]) -> Result<Report, LintError> {
    run_filtered(root, allow, &RuleFilter::all())
}

/// How many callers the call graph attributes per finding.
const CALLER_LIMIT: usize = 3;

/// Run the linter over `root` (the workspace directory that contains
/// `crates/`). `allow` is the parsed allowlist; `filter` selects rules.
pub fn run_filtered(
    root: &Path,
    allow: &[AllowEntry],
    filter: &RuleFilter,
) -> Result<Report, LintError> {
    let mut files = collect_sources(root)?;
    files.sort();
    let mut report = Report {
        files_scanned: files.len(),
        rules_run: filter.rules().iter().map(|r| r.to_string()).collect(),
        allowlist_size: allow.len(),
        ..Default::default()
    };

    // Pass 1: tokenize everything once; the per-file rules, the error
    // cross-check, the stream-const table and the call graph all feed
    // off the same token streams.
    let mut scans: Vec<(String, Vec<scanner::Token>)> = Vec::new();
    for path in &files {
        let text = fs::read_to_string(path)
            .map_err(|source| LintError::Io { path: path.clone(), source })?;
        let rel = relative(root, path);
        scans.push((rel, scanner::tokenize(&scanner::mask(&text))));
    }
    let graph =
        callgraph::build(scans.iter().map(|(rel, toks)| (rel.as_str(), toks.as_slice())));

    let mut enums: Vec<ErrorEnum> = Vec::new();
    let mut impls: Vec<TraitImpl> = Vec::new();
    let mut consts: Vec<stream_rules::StreamConst> = Vec::new();
    let mut all: Vec<rules::Finding> = Vec::new();

    // Pass 2: per-file rules and cross-file collections.
    for (rel, tokens) in &scans {
        let krate = crate_of(rel);
        all.extend(
            rules::check_file(rel, tokens)
                .into_iter()
                .filter(|f| filter.is_enabled(f.rule)),
        );
        det_rules::check_file(rel, tokens, |r| filter.is_enabled(r), &mut all);
        if filter.is_enabled("stream-nonconst") {
            stream_rules::check_call_sites(rel, tokens, &mut all);
        }
        rules::collect_error_decls(rel, &krate, tokens, &mut enums, &mut impls);
        stream_rules::collect_consts(rel, tokens, &mut consts);
    }

    // Pass 3: cross-file rules.
    if filter.is_enabled("error-impl") {
        all.extend(rules::check_error_impls(&enums, &impls));
    }
    if filter.is_enabled("stream-local-const") {
        stream_rules::check_local_consts(&consts, &mut all);
    }
    if filter.is_enabled("stream-dup") {
        stream_rules::check_duplicates(&consts, &mut all);
    }
    if filter.is_enabled("hot-path-alloc") {
        alloc_rules::check(&scans, &graph, &mut all);
    }

    // Pass 4: call-graph attribution for the families where "who reaches
    // this helper" is the question the reader asks next.
    for f in &mut all {
        if matches!(f.family(), "determinism" | "stream" | "alloc") {
            if let Some(scope) = f.scope.as_deref() {
                f.callers = graph.reaching_callers(scope, CALLER_LIMIT);
            }
        }
    }

    let mut used = vec![false; allow.len()];
    for f in all {
        match allow.iter().position(|e| e.covers(&f)) {
            Some(i) => {
                used[i] = true;
                report.allowed.push(f);
            }
            None => report.findings.push(f),
        }
    }
    // An entry is stale only if some rule it exempts actually ran and it
    // still covered nothing — under `--rules` an out-of-scope entry had no
    // chance to match, and flagging it would make `--check-allowlist`
    // fail spuriously on filtered runs.
    report.stale_allows = allow
        .iter()
        .zip(&used)
        .filter(|&(e, &u)| !u && e.rules.iter().any(|r| filter.is_enabled(r)))
        .map(|(e, _)| e.clone())
        .collect();
    Ok(report)
}

/// Load and parse `lint-allow.toml` under `root`; a missing file is an
/// empty allowlist.
pub fn load_allowlist(root: &Path) -> Result<Vec<AllowEntry>, LintError> {
    let path = root.join("lint-allow.toml");
    match fs::read_to_string(&path) {
        Ok(text) => allowlist::parse(&text).map_err(LintError::Allowlist),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(source) => Err(LintError::Io { path, source }),
    }
}

/// All `.rs` files under `crates/*/src`, excluding per-crate `src/bin`
/// trees (top-level binaries may exit noisily by design).
fn collect_sources(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let entries = fs::read_dir(&crates_dir)
        .map_err(|source| LintError::Io { path: crates_dir.clone(), source })?;
    for entry in entries.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            walk(&src, &mut out)?;
        }
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    if dir.file_name().is_some_and(|n| n == "bin") {
        return Ok(());
    }
    let entries =
        fs::read_dir(dir).map_err(|source| LintError::Io { path: dir.to_path_buf(), source })?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// The crate directory name of a repo-relative path
/// (`crates/arch/src/engine.rs` → `arch`).
fn crate_of(rel: &str) -> String {
    rel.split('/').nth(1).unwrap_or("").to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_extracts_directory() {
        assert_eq!(crate_of("crates/arch/src/engine.rs"), "arch");
        assert_eq!(crate_of("crates/photonics/src/units.rs"), "photonics");
    }

    #[test]
    fn every_rule_has_a_family() {
        for rule in ALL_RULES {
            assert!(
                FAMILIES.contains(&rules::family_of(rule)),
                "rule {rule} maps to unknown family {}",
                rules::family_of(rule)
            );
        }
    }

    #[test]
    fn rule_filter_accepts_ids_and_families() {
        let f = RuleFilter::parse("determinism, no-panic").unwrap();
        assert!(f.is_enabled("no-panic"));
        assert!(f.is_enabled("det-hash-iter"));
        assert!(f.is_enabled("det-raw-thread"));
        assert!(!f.is_enabled("no-cast"));
        assert!(!f.is_enabled("stream-dup"));
        // Canonical order regardless of spec order.
        assert_eq!(f.rules()[0], "no-panic");
    }

    #[test]
    fn rule_filter_rejects_unknown_and_empty() {
        assert!(RuleFilter::parse("no-such-rule").is_err());
        assert!(RuleFilter::parse("  ,  ").is_err());
    }
}
