//! Text and JSON rendering of a lint run.
//!
//! JSON is **schema 2**: every finding carries its rule `family` and
//! call-graph `callers`, and the top level exposes `finding_count` /
//! `allowed_count` / `allowlist_size` / `allowlist_budget` so a CI
//! guard is one `jq '.finding_count'` away.

use crate::allowlist::AllowEntry;
use crate::rules::Finding;

/// JSON schema version emitted by [`Report::to_json`].
pub const SCHEMA_VERSION: u32 = 2;

/// The outcome of a full lint run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Violations not covered by the allowlist — these fail the run.
    pub findings: Vec<Finding>,
    /// Violations covered by an allowlist entry (counted, not failing).
    pub allowed: Vec<Finding>,
    /// Allowlist entries that covered nothing — candidates for deletion.
    pub stale_allows: Vec<AllowEntry>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Rule ids that actually ran (after `--rules` filtering).
    pub rules_run: Vec<String>,
    /// Entries in the loaded allowlist.
    pub allowlist_size: usize,
}

impl Report {
    /// True when no unallowed finding survived.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let scope = f.scope.as_deref().map(|s| format!(" (in fn {s})")).unwrap_or_default();
            let reached = if f.callers.is_empty() {
                String::new()
            } else {
                format!(" (reached from {})", f.callers.join(", "))
            };
            out.push_str(&format!(
                "{}:{}: [{}] {}{}{}\n",
                f.file, f.line, f.rule, f.message, scope, reached
            ));
        }
        for e in &self.stale_allows {
            out.push_str(&format!(
                "lint-allow.toml: stale entry for {} ({:?}) — covers nothing, delete it\n",
                e.file, e.rules
            ));
        }
        out.push_str(&format!(
            "trident-lint: {} file(s) scanned, {} finding(s), {} allowlisted\n",
            self.files_scanned,
            self.findings.len(),
            self.allowed.len()
        ));
        out
    }

    /// Machine-readable rendering (stable key order, no dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str(&format!("  \"finding_count\": {},\n", self.findings.len()));
        out.push_str(&format!("  \"allowed_count\": {},\n", self.allowed.len()));
        out.push_str(&format!("  \"allowlist_size\": {},\n", self.allowlist_size));
        out.push_str(&format!("  \"allowlist_budget\": {},\n", crate::ALLOWLIST_BUDGET));
        out.push_str(&format!(
            "  \"rules_run\": [{}],\n",
            self.rules_run.iter().map(|r| json_string(r)).collect::<Vec<_>>().join(", ")
        ));
        out.push_str("  \"findings\": [\n");
        push_findings(&mut out, &self.findings);
        out.push_str("  ],\n");
        out.push_str("  \"allowed\": [\n");
        push_findings(&mut out, &self.allowed);
        out.push_str("  ],\n");
        out.push_str("  \"stale_allows\": [\n");
        for (i, e) in self.stale_allows.iter().enumerate() {
            let comma = if i + 1 < self.stale_allows.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"file\": {}, \"rules\": [{}]}}{}\n",
                json_string(&e.file),
                e.rules.iter().map(|r| json_string(r)).collect::<Vec<_>>().join(", "),
                comma
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn push_findings(out: &mut String, findings: &[Finding]) {
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        let scope = match f.scope {
            Some(ref s) => json_string(s),
            None => "null".to_string(),
        };
        let callers =
            f.callers.iter().map(|c| json_string(c)).collect::<Vec<_>>().join(", ");
        out.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"family\": {}, \"scope\": {}, \"callers\": [{}], \"message\": {}}}{}\n",
            json_string(&f.file),
            f.line,
            json_string(f.rule),
            json_string(f.family()),
            scope,
            callers,
            json_string(&f.message),
            comma
        ));
    }
}

/// Minimal JSON string escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            file: "crates/x/src/a.rs".into(),
            line: 3,
            rule: "no-panic",
            scope: Some("f".into()),
            callers: Vec::new(),
            message: "`.unwrap()` in library code".into(),
        }
    }

    #[test]
    fn text_names_file_line_rule() {
        let r = Report { findings: vec![finding()], files_scanned: 1, ..Default::default() };
        let t = r.to_text();
        assert!(t.contains("crates/x/src/a.rs:3: [no-panic]"));
        assert!(t.contains("(in fn f)"));
    }

    #[test]
    fn schema_v2_counts_and_families_are_present() {
        let mut f = finding();
        f.callers = vec!["crates/x/src/b.rs::caller".into()];
        let r = Report {
            findings: vec![f],
            files_scanned: 1,
            rules_run: vec!["no-panic".into()],
            allowlist_size: 3,
            ..Default::default()
        };
        let j = r.to_json();
        assert!(j.contains("\"schema\": 2"), "{j}");
        assert!(j.contains("\"finding_count\": 1"));
        assert!(j.contains("\"allowed_count\": 0"));
        assert!(j.contains("\"allowlist_size\": 3"));
        assert!(j.contains("\"allowlist_budget\": 10"));
        assert!(j.contains("\"family\": \"panic\""));
        assert!(j.contains("\"callers\": [\"crates/x/src/b.rs::caller\"]"));
        assert!(j.contains("\"rules_run\": [\"no-panic\"]"));
        let t = r.to_text();
        assert!(t.contains("(reached from crates/x/src/b.rs::caller)"), "{t}");
    }

    #[test]
    fn json_escapes_and_balances() {
        let mut f = finding();
        f.message = "quote \" backslash \\ done".into();
        let r = Report { findings: vec![f], files_scanned: 1, ..Default::default() };
        let j = r.to_json();
        assert!(j.contains("\\\""));
        assert!(j.contains("\\\\"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"clean\": false"));
    }
}
