//! The `lint-allow.toml` allowlist.
//!
//! A hand-rolled parser for the tiny TOML subset the allowlist needs:
//! `[[allow]]` table arrays whose entries are `key = "string"` or
//! `key = ["a", "b"]`, plus `#` comments. Keeping the grammar this small
//! is deliberate — entries stay diff-friendly (one file, one reason, a
//! set of rules and optional function scopes; never line numbers, which
//! would churn on every edit).

use crate::rules::Finding;
use std::fmt;

/// One allowlist entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllowEntry {
    /// Repo-relative file the exemption applies to.
    pub file: String,
    /// Rule ids exempted in that file.
    pub rules: Vec<String>,
    /// Optional enclosing-function scopes; empty means the whole file.
    pub scopes: Vec<String>,
    /// Why the exemption is justified (required, shown in reports).
    pub reason: String,
}

impl AllowEntry {
    /// Does this entry cover the finding?
    pub fn covers(&self, f: &Finding) -> bool {
        self.file == f.file
            && self.rules.iter().any(|r| r == f.rule)
            && (self.scopes.is_empty()
                || f.scope.as_ref().is_some_and(|s| self.scopes.iter().any(|e| e == s)))
    }
}

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowParseError {
    /// 1-based line in the allowlist file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AllowParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint-allow.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for AllowParseError {}

/// Parse the allowlist text.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, AllowParseError> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut in_entry = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            entries.push(AllowEntry::default());
            in_entry = true;
            continue;
        }
        if line.starts_with('[') {
            return Err(AllowParseError {
                line: lineno,
                message: format!("unsupported table `{line}`; only [[allow]] is recognised"),
            });
        }
        if !in_entry {
            return Err(AllowParseError {
                line: lineno,
                message: "key outside any [[allow]] entry".to_string(),
            });
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(AllowParseError {
                line: lineno,
                message: format!("expected `key = value`, got `{line}`"),
            });
        };
        let key = key.trim();
        let value = value.trim();
        let Some(entry) = entries.last_mut() else {
            return Err(AllowParseError { line: lineno, message: "no open entry".to_string() });
        };
        match key {
            "file" => entry.file = parse_string(value, lineno)?,
            "reason" => entry.reason = parse_string(value, lineno)?,
            "rules" => entry.rules = parse_string_array(value, lineno)?,
            "scopes" => entry.scopes = parse_string_array(value, lineno)?,
            other => {
                return Err(AllowParseError {
                    line: lineno,
                    message: format!("unknown key `{other}` (expected file/rules/scopes/reason)"),
                })
            }
        }
    }
    for (i, e) in entries.iter().enumerate() {
        if e.file.is_empty() || e.rules.is_empty() || e.reason.is_empty() {
            return Err(AllowParseError {
                line: 0,
                message: format!(
                    "entry #{} must set `file`, `rules`, and `reason`",
                    i + 1
                ),
            });
        }
    }
    Ok(entries)
}

fn strip_comment(line: &str) -> &str {
    // A '#' outside quotes starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, line: usize) -> Result<String, AllowParseError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(AllowParseError {
            line,
            message: format!("expected a quoted string, got `{v}`"),
        })
    }
}

fn parse_string_array(value: &str, line: usize) -> Result<Vec<String>, AllowParseError> {
    let v = value.trim();
    let Some(inner) = v.strip_prefix('[').and_then(|s| s.strip_suffix(']')) else {
        return Err(AllowParseError {
            line,
            message: format!("expected an array of strings, got `{v}`"),
        });
    };
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part, line)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# exemptions, smallest possible set
[[allow]]
file = "crates/photonics/src/units.rs"
rules = ["no-cast", "no-bare-f64"]
reason = "the conversion boundary"

[[allow]]
file = "crates/arch/src/engine.rs"
rules = ["no-panic"]
scopes = ["forward", "predict"]
reason = "documented panic front-doors"
"#;

    #[test]
    fn parses_entries() {
        let entries = parse(SAMPLE).expect("sample parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rules, vec!["no-cast", "no-bare-f64"]);
        assert!(entries[0].scopes.is_empty());
        assert_eq!(entries[1].scopes, vec!["forward", "predict"]);
    }

    #[test]
    fn covers_matches_scope() {
        let entries = parse(SAMPLE).expect("sample parses");
        let hit = Finding {
            file: "crates/arch/src/engine.rs".into(),
            line: 10,
            rule: "no-panic",
            scope: Some("forward".into()),
            callers: Vec::new(),
            message: String::new(),
        };
        let miss = Finding { scope: Some("train".into()), ..hit.clone() };
        assert!(entries[1].covers(&hit));
        assert!(!entries[1].covers(&miss));
    }

    #[test]
    fn missing_reason_is_rejected() {
        let bad = "[[allow]]\nfile = \"x.rs\"\nrules = [\"no-panic\"]\n";
        assert!(parse(bad).is_err());
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let bad = "[[allow]]\nfile = \"x.rs\"\nlines = [3]\n";
        assert!(parse(bad).is_err());
    }
}
