//! RNG stream-hygiene rules.
//!
//! Counter-addressed RNG (`trident_streams::mix(seed, stream, draw)`)
//! only delivers independence if every logical noise source owns a
//! distinct stream id within its seed domain. Two sources sharing an id
//! draw *identical* values — a correlation bug that no test of either
//! source alone can see. These rules make the discipline checkable:
//!
//! | rule                 | what it rejects                                        |
//! |----------------------|--------------------------------------------------------|
//! | `stream-local-const` | a `STREAM_*` const defined outside the registry (`crates/streams/src/lib.rs`) |
//! | `stream-dup`         | two registered stream consts in the same domain with the same value |
//! | `stream-nonconst`    | a mixer call whose stream argument is not a `STREAM_*` identifier |
//!
//! The *domain* of a stream const is the second `_`-segment of its name
//! (`STREAM_PCM_NU` → `PCM`, `STREAM_TRAFFIC_ARRIVAL` → `TRAFFIC`):
//! one domain = one seed family, and ids may coincide across domains
//! because their seed spaces never alias (DESIGN.md §10).
//!
//! The forwarding layer — `fn mix`, `fn seeded_u64`,
//! `fn seeded_gaussian` bodies, where the stream is necessarily a
//! parameter — is exempt from `stream-nonconst`, as is test code.

use crate::rules::Finding;
use crate::scanner::{parse_u64_literal, Token};

/// The single file allowed to define `STREAM_*` constants.
pub const REGISTRY_FILE: &str = "crates/streams/src/lib.rs";

/// Functions whose bodies legitimately pass a non-constant stream:
/// they *are* the mixer entry points the rest of the repo calls.
const FORWARDING_FNS: &[&str] = &["mix", "seeded_u64", "seeded_gaussian"];

/// Mixer entry points whose call sites carry a stream argument
/// (argument index 1, zero-based, in every signature).
const MIXER_FNS: &[&str] = &["mix", "seeded_u64", "seeded_gaussian"];
const MIXER_STREAM_ARG: usize = 1;

/// One `const STREAM_* : u64 = <literal>;` definition site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConst {
    /// Repo-relative file.
    pub file: String,
    /// 1-based line of the const name.
    pub line: usize,
    /// The full identifier (`STREAM_PCM_NU`).
    pub name: String,
    /// Resolved literal value; `None` when the initializer is not a
    /// plain integer literal.
    pub value: Option<u64>,
}

impl StreamConst {
    /// The seed-domain segment of the name (`STREAM_PCM_NU` → `PCM`).
    pub fn domain(&self) -> &str {
        self.name.split('_').nth(1).unwrap_or("")
    }
}

/// Collect `STREAM_*` const definitions from one tokenized file.
/// Test-only consts are fixture scaffolding, not registry entries.
pub fn collect_consts(rel: &str, tokens: &[Token], out: &mut Vec<StreamConst>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test || t.word() != Some("const") {
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(Token::word) else { continue };
        if !name.starts_with("STREAM_") {
            continue;
        }
        // const STREAM_X : u64 = <literal> ;
        let value = if tokens.get(i + 2).is_some_and(|p| p.is_punct(':'))
            && tokens.get(i + 3).and_then(Token::word) == Some("u64")
            && tokens.get(i + 4).is_some_and(|p| p.is_punct('='))
        {
            tokens.get(i + 5).and_then(Token::number).and_then(parse_u64_literal)
        } else {
            None
        };
        out.push(StreamConst {
            file: rel.to_string(),
            line: tokens[i + 1].line,
            name: name.to_string(),
            value,
        });
    }
}

/// `stream-local-const`: every `STREAM_*` const must live in the
/// registry file so the full id table is readable in one place.
pub fn check_local_consts(consts: &[StreamConst], findings: &mut Vec<Finding>) {
    for c in consts {
        if c.file != REGISTRY_FILE {
            findings.push(Finding {
                file: c.file.clone(),
                line: c.line,
                rule: "stream-local-const",
                scope: None,
                callers: Vec::new(),
                message: format!(
                    "`{}` is defined outside the stream registry; move it to \
                     `{REGISTRY_FILE}` so the id table stays in one place",
                    c.name
                ),
            });
        }
    }
}

/// `stream-dup`: within one domain, two differently-named consts with
/// the same value address the same draws — correlated noise sources.
pub fn check_duplicates(consts: &[StreamConst], findings: &mut Vec<Finding>) {
    for (j, c) in consts.iter().enumerate() {
        let Some(value) = c.value else { continue };
        let Some(first) = consts[..j].iter().find(|p| {
            p.name != c.name && p.domain() == c.domain() && p.value == Some(value)
        }) else {
            continue;
        };
        findings.push(Finding {
            file: c.file.clone(),
            line: c.line,
            rule: "stream-dup",
            scope: None,
            callers: Vec::new(),
            message: format!(
                "`{}` reuses stream id {} already taken by `{}` in domain `{}`; the two \
                 noise sources draw identical values",
                c.name,
                value,
                first.name,
                c.domain()
            ),
        });
    }
}

/// `stream-nonconst`: walk mixer call sites and reject any whose stream
/// argument is not a single `STREAM_*` identifier.
pub fn check_call_sites(rel: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(word) = t.word() else { continue };
        if !MIXER_FNS.contains(&word)
            || !tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            || (i > 0 && tokens[i - 1].word() == Some("fn"))
        {
            continue;
        }
        if t.enclosing_fn.as_deref().is_some_and(|f| FORWARDING_FNS.contains(&f)) {
            continue;
        }
        let Some(arg) = nth_argument(tokens, i + 1, MIXER_STREAM_ARG) else { continue };
        let ok = arg.len() == 1
            && arg[0].word().is_some_and(|w| w.starts_with("STREAM_"));
        if !ok {
            let rendered: String = arg
                .iter()
                .map(render_token)
                .collect::<Vec<_>>()
                .join(" ");
            findings.push(Finding {
                file: rel.to_string(),
                line: t.line,
                rule: "stream-nonconst",
                scope: t.enclosing_fn.clone(),
                callers: Vec::new(),
                message: format!(
                    "`{word}` is addressed with a computed stream `{rendered}`; pass a \
                     registered `STREAM_*` constant so draw addresses stay auditable"
                ),
            });
        }
    }
}

/// The tokens of argument `index` (0-based) of the call whose opening
/// `(` sits at `open`. Splits on top-level commas only.
fn nth_argument(tokens: &[Token], open: usize, index: usize) -> Option<Vec<&Token>> {
    let mut depth = 1usize;
    let mut arg_idx = 0usize;
    let mut current: Vec<&Token> = Vec::new();
    let mut k = open + 1;
    while k < tokens.len() && depth > 0 {
        let t = &tokens[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 && t.is_punct(',') {
            if arg_idx == index {
                return Some(current);
            }
            arg_idx += 1;
            current.clear();
            k += 1;
            continue;
        }
        if arg_idx == index {
            current.push(t);
        }
        k += 1;
    }
    (arg_idx == index && !current.is_empty()).then_some(current)
}

fn render_token(t: &&Token) -> String {
    match &t.kind {
        crate::scanner::TokenKind::Word(w) => w.clone(),
        crate::scanner::TokenKind::Number(n) => n.clone(),
        crate::scanner::TokenKind::Punct(c) => c.to_string(),
        crate::scanner::TokenKind::Arrow => "->".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{mask, tokenize};

    fn toks(src: &str) -> Vec<Token> {
        tokenize(&mask(src))
    }

    fn consts(rel: &str, src: &str) -> Vec<StreamConst> {
        let mut out = Vec::new();
        collect_consts(rel, &toks(src), &mut out);
        out
    }

    #[test]
    fn const_definitions_resolve_values() {
        let c = consts(
            REGISTRY_FILE,
            "pub const STREAM_PCM_NU: u64 = 1;\npub const STREAM_PCM_PROG: u64 = 0x2;",
        );
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].value, Some(1));
        assert_eq!(c[1].value, Some(2));
        assert_eq!(c[0].domain(), "PCM");
    }

    #[test]
    fn local_const_outside_registry_is_flagged() {
        let c = consts("crates/pcm/src/noise.rs", "const STREAM_PCM_EXTRA: u64 = 9;");
        let mut f = Vec::new();
        check_local_consts(&c, &mut f);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "stream-local-const");
    }

    #[test]
    fn duplicate_value_in_same_domain_is_flagged() {
        let c = consts(
            REGISTRY_FILE,
            "pub const STREAM_PCM_PROG: u64 = 2;\npub const STREAM_PCM_READ: u64 = 2;",
        );
        let mut f = Vec::new();
        check_duplicates(&c, &mut f);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "stream-dup");
        assert!(f[0].message.contains("STREAM_PCM_PROG"));
    }

    #[test]
    fn same_value_across_domains_is_sanctioned() {
        let c = consts(
            REGISTRY_FILE,
            "pub const STREAM_PCM_NU: u64 = 1;\npub const STREAM_TRAFFIC_ARRIVAL: u64 = 1;",
        );
        let mut f = Vec::new();
        check_duplicates(&c, &mut f);
        assert!(f.is_empty(), "cross-domain id reuse is fine: {f:?}");
    }

    #[test]
    fn computed_stream_argument_is_flagged() {
        let src = "fn f(seed: u64, i: u64) { let _ = seeded_u64(seed, i % 4, 0); }";
        let mut f = Vec::new();
        check_call_sites("crates/serve/src/traffic.rs", &toks(src), &mut f);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "stream-nonconst");
        assert!(f[0].message.contains("i % 4"), "{}", f[0].message);
    }

    #[test]
    fn literal_stream_argument_is_flagged() {
        let src = "fn f(seed: u64) { let _ = mix(seed, 7, 0); }";
        let mut f = Vec::new();
        check_call_sites("crates/pcm/src/noise.rs", &toks(src), &mut f);
        assert_eq!(f.len(), 1, "bare literals are unauditable too: {f:?}");
    }

    #[test]
    fn registered_constant_argument_is_clean() {
        let src = "fn f(seed: u64, d: u64) { let _ = seeded_gaussian(seed, STREAM_PCM_NU, d); }";
        let mut f = Vec::new();
        check_call_sites("crates/pcm/src/stat.rs", &toks(src), &mut f);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn forwarding_layer_is_exempt() {
        let src = "pub fn seeded_u64(seed: u64, stream: u64, draw: u64) -> u64 { mix(seed, stream, draw) }";
        let mut f = Vec::new();
        check_call_sites(REGISTRY_FILE, &toks(src), &mut f);
        assert!(f.is_empty(), "the mixer entry points forward their parameter: {f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { let _ = mix(1, 2, 3); } }";
        let mut f = Vec::new();
        check_call_sites(REGISTRY_FILE, &toks(src), &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn nested_call_in_earlier_argument_does_not_shift_the_stream_arg() {
        let src = "fn f(a: u64, d: u64) { let _ = seeded_u64(other(a, 3), STREAM_PCM_NU, d); }";
        let mut f = Vec::new();
        check_call_sites("crates/pcm/src/stat.rs", &toks(src), &mut f);
        assert!(f.is_empty(), "{f:?}");
    }
}
