//! KV-cache traffic accounting for decoder-style attention.
//!
//! On Trident the KV-cache *is* the attention weight bank: decoding a
//! token programs its key row and value column into PCM once (the cache
//! "write"), after which every later decode step re-reads the whole
//! cached prefix optically through the score and context MVMs (the cache
//! "reads"). This module provides the closed-form per-token expectations
//! the functional simulator's measured counts are pinned against
//! (`tests/kv_cache_invariants.rs`), plus the obs billing hook the
//! repro_all KV-dataflow section uses.
//!
//! Closed forms for decoding `T` tokens through `L` causal layers at
//! width `d_model` (keys and values each carry `d_model` elements per
//! token per layer):
//!
//! * writes  = `T · L · 2 · d_model`
//! * reads   = `Σ_{t=1..T} t · L · 2 · d_model = L · d_model · T·(T+1)`
//!
//! A full-sequence recompute instead reprograms every prior K row and V
//! column at every step — `Σ t·L·2·d_model` writes — which is exactly
//! the gap the cache closes; [`KvCachePlan::recompute_writes`] quantifies
//! it so the dataflow section can report the saving.

use crate::layer::LayerKind;
use crate::model::ModelSpec;
use trident_obs as obs;
use trident_photonics::units::EnergyPj;

/// Saturating `usize → u64` for structural counts (total element counts
/// can overflow neither in practice nor silently here).
fn count_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// The KV-cache geometry of one decoder workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvCachePlan {
    /// Model width: elements per key row (= per value column) per layer.
    pub d_model: usize,
    /// Causal attention layers, each with its own K and V banks.
    pub layers: usize,
    /// Context length: tokens decoded (and cached) per sequence.
    pub tokens: usize,
}

impl KvCachePlan {
    /// Derive the plan from a model description: one cache per
    /// `SelfAttention { causal: true }` layer, width and context from
    /// that layer's token shape. `None` for encoder-only models.
    pub fn for_model(model: &ModelSpec) -> Option<Self> {
        let mut plan: Option<Self> = None;
        for layer in &model.layers {
            if let LayerKind::SelfAttention { causal: true, .. } = layer.kind {
                let p = plan.get_or_insert(Self {
                    d_model: layer.input.c,
                    layers: 0,
                    tokens: layer.input.h,
                });
                p.layers += 1;
            }
        }
        plan
    }

    /// Cache elements written when decoding token `t` (1-based): one key
    /// row and one value column per layer, regardless of position.
    pub fn writes_at_step(&self, _t: usize) -> u64 {
        count_u64(self.layers) * 2 * count_u64(self.d_model)
    }

    /// Cache elements read when decoding token `t` (1-based): the full
    /// `t`-token prefix streams through both attention MVMs per layer.
    pub fn reads_at_step(&self, t: usize) -> u64 {
        count_u64(t.min(self.tokens)) * count_u64(self.layers) * 2 * count_u64(self.d_model)
    }

    /// Total cache elements written over the whole decode.
    pub fn total_writes(&self) -> u64 {
        count_u64(self.tokens) * count_u64(self.layers) * 2 * count_u64(self.d_model)
    }

    /// Total cache elements read over the whole decode:
    /// `L · d_model · T·(T+1)`.
    pub fn total_reads(&self) -> u64 {
        let t = count_u64(self.tokens);
        count_u64(self.layers) * count_u64(self.d_model) * t * (t + 1)
    }

    /// PCM programming events a cache-less full recompute would need:
    /// every step reprograms the whole prefix, `L · d_model · T·(T+1)`
    /// element writes — the quadratic bill the cache amortises to
    /// [`KvCachePlan::total_writes`].
    pub fn recompute_writes(&self) -> u64 {
        let t = count_u64(self.tokens);
        count_u64(self.layers) * count_u64(self.d_model) * t * (t + 1)
    }

    /// Energy of the decode's cache traffic: `per_write` covers one PCM
    /// element programming event, `per_read` one optically-streamed
    /// element read (typically orders of magnitude cheaper — in-memory
    /// compute is the point).
    pub fn traffic_energy(&self, per_write: EnergyPj, per_read: EnergyPj) -> EnergyPj {
        let writes = usize::try_from(self.total_writes()).unwrap_or(usize::MAX);
        let reads = usize::try_from(self.total_reads()).unwrap_or(usize::MAX);
        per_write * writes + per_read * reads
    }

    /// Bill the whole decode's cache traffic to the obs counters
    /// (`kv_cache_writes` / `kv_cache_reads` / `kv_cache_fj`). A no-op
    /// when tracing is disabled, like every obs sink.
    pub fn bill(&self, per_write: EnergyPj, per_read: EnergyPj) {
        obs::add(obs::Counter::KvCacheWrites, self.total_writes());
        obs::add(obs::Counter::KvCacheReads, self.total_reads());
        obs::add_pj(obs::Counter::KvCacheFj, self.traffic_energy(per_write, per_read).0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn closed_forms_agree_with_stepwise_sums() {
        let plan = KvCachePlan { d_model: 256, layers: 6, tokens: 33 };
        let step_writes: u64 = (1..=plan.tokens).map(|t| plan.writes_at_step(t)).sum();
        let step_reads: u64 = (1..=plan.tokens).map(|t| plan.reads_at_step(t)).sum();
        assert_eq!(step_writes, plan.total_writes());
        assert_eq!(step_reads, plan.total_reads());
        assert_eq!(plan.total_writes(), 33 * 6 * 2 * 256);
        assert_eq!(plan.total_reads(), 6 * 256 * 33 * 34);
    }

    #[test]
    fn plan_derived_from_gpt_decoder() {
        let plan = KvCachePlan::for_model(&zoo::gpt_decoder()).unwrap();
        assert_eq!(plan, KvCachePlan { d_model: 256, layers: 6, tokens: 256 });
    }

    #[test]
    fn encoder_models_have_no_plan() {
        assert!(KvCachePlan::for_model(&zoo::vit_tiny()).is_none());
        assert!(KvCachePlan::for_model(&zoo::resnet50()).is_none());
    }

    #[test]
    fn cache_beats_recompute_quadratically() {
        let plan = KvCachePlan { d_model: 256, layers: 6, tokens: 256 };
        // Recompute writes / cached writes = (T+1)/2.
        assert_eq!(plan.recompute_writes() / plan.total_writes(), 256u64.div_ceil(2));
    }

    #[test]
    fn traffic_energy_weights_reads_and_writes() {
        let plan = KvCachePlan { d_model: 4, layers: 1, tokens: 2 };
        // writes = 16, reads = 24.
        let e = plan.traffic_energy(EnergyPj(10.0), EnergyPj(0.5));
        assert_eq!(e, EnergyPj(16.0 * 10.0 + 24.0 * 0.5));
    }
}
