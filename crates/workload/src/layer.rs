//! Typed layer specifications and shape arithmetic.

use serde::{Deserialize, Serialize};

/// A `channels × height × width` activation shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorShape {
    /// Channel count.
    pub c: usize,
    /// Height in pixels.
    pub h: usize,
    /// Width in pixels.
    pub w: usize,
}

impl TensorShape {
    /// Construct a shape.
    pub const fn new(c: usize, h: usize, w: usize) -> Self {
        Self { c, h, w }
    }

    /// Total element count.
    pub fn volume(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Flattened 1-D shape (for dense layers).
    pub fn flattened(&self) -> Self {
        Self { c: self.volume(), h: 1, w: 1 }
    }
}

/// What a layer does, with the parameters that decide its cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv2d {
        /// Output channels.
        out_c: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on each side.
        padding: usize,
        /// Channel groups (`groups == in_c` is a depthwise convolution).
        groups: usize,
    },
    /// Fully connected layer.
    Dense {
        /// Output features.
        out_features: usize,
    },
    /// Max pooling.
    MaxPool {
        /// Window size.
        size: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on each side.
        padding: usize,
    },
    /// Average pooling.
    AvgPool {
        /// Window size.
        size: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling to `c × 1 × 1`.
    GlobalAvgPool,
    /// Element-wise residual addition (merges a skip branch).
    Add,
    /// Channel concatenation of parallel branches; `extra_c` channels are
    /// contributed by the other branches.
    Concat {
        /// Channels appended by the side branches.
        extra_c: usize,
    },
    /// Multi-head self-attention over a token sequence encoded as
    /// `c = d_model`, `h = seq`, `w = 1`. The QKV/output projections are
    /// separate 1×1 [`LayerKind::Conv2d`] layers; this kind covers only
    /// the attention core (`Q·Kᵀ` scores and `probs·V` context), which
    /// streams through the photonic array with *dynamic* operands — the
    /// K/V writes are KV-cache traffic, not trainable parameters.
    SelfAttention {
        /// Attention heads (`d_model` must be divisible by this).
        heads: usize,
        /// Causal (decoder) masking. Costs assume full-array streaming —
        /// the mask is applied digitally, not by skipping MVM work.
        causal: bool,
    },
    /// Row-wise LayerNorm over tokens (`c = d_model` features per token).
    /// Executes on the digital LDSU path: zero photonic MACs, `2·c`
    /// affine parameters (gain and shift).
    LayerNorm,
}

/// One layer instance: its kind plus the input shape it sees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Human-readable layer name (unique within a model).
    pub name: String,
    /// Layer kind and parameters.
    pub kind: LayerKind,
    /// The activation shape entering this layer.
    pub input: TensorShape,
}

impl LayerSpec {
    /// Output activation shape.
    pub fn output(&self) -> TensorShape {
        let i = self.input;
        match self.kind {
            LayerKind::Conv2d { out_c, kernel, stride, padding, groups } => {
                assert!(i.c.is_multiple_of(groups), "{}: channels {} not divisible by groups {groups}", self.name, i.c);
                assert!(out_c % groups == 0, "{}: out_c {out_c} not divisible by groups {groups}", self.name);
                let h = (i.h + 2 * padding - kernel) / stride + 1;
                let w = (i.w + 2 * padding - kernel) / stride + 1;
                TensorShape::new(out_c, h, w)
            }
            LayerKind::Dense { out_features } => TensorShape::new(out_features, 1, 1),
            LayerKind::MaxPool { size, stride, padding } => {
                let h = (i.h + 2 * padding - size) / stride + 1;
                let w = (i.w + 2 * padding - size) / stride + 1;
                TensorShape::new(i.c, h, w)
            }
            LayerKind::AvgPool { size, stride } => {
                let h = (i.h - size) / stride + 1;
                let w = (i.w - size) / stride + 1;
                TensorShape::new(i.c, h, w)
            }
            LayerKind::GlobalAvgPool => TensorShape::new(i.c, 1, 1),
            LayerKind::Add => i,
            LayerKind::Concat { extra_c } => TensorShape::new(i.c + extra_c, i.h, i.w),
            LayerKind::SelfAttention { heads, .. } => {
                assert!(heads > 0 && i.c.is_multiple_of(heads), "{}: d_model {} not divisible by heads {heads}", self.name, i.c);
                i
            }
            LayerKind::LayerNorm => i,
        }
    }

    /// Multiply-accumulate operations for one inference.
    pub fn macs(&self) -> u64 {
        let i = self.input;
        match self.kind {
            LayerKind::Conv2d { out_c, kernel, groups, .. } => {
                let o = self.output();
                let per_output = (i.c / groups) * kernel * kernel;
                (out_c as u64) * (o.h as u64) * (o.w as u64) * per_output as u64
            }
            LayerKind::Dense { out_features } => (out_features as u64) * (i.volume() as u64),
            // Scores (seq·seq·d_head per head) + context (seq·seq·d_head
            // per head) = 2 · d_model · seq² regardless of head count.
            LayerKind::SelfAttention { .. } => 2 * (i.c as u64) * (i.h as u64) * (i.h as u64),
            // Pooling/merge/normalisation layers do adds, not weight MACs.
            _ => 0,
        }
    }

    /// Trainable parameter count (weights only; the photonic PEs are
    /// bias-free, matching the paper's MRR weight banks).
    pub fn params(&self) -> u64 {
        let i = self.input;
        match self.kind {
            LayerKind::Conv2d { out_c, kernel, groups, .. } => {
                (out_c as u64) * ((i.c / groups) as u64) * (kernel as u64) * (kernel as u64)
            }
            LayerKind::Dense { out_features } => (out_features as u64) * (i.volume() as u64),
            // Attention weights are the *activations* of the same pass
            // (K/V written at run time = cache traffic, not parameters).
            LayerKind::SelfAttention { .. } => 0,
            LayerKind::LayerNorm => 2 * i.c as u64,
            _ => 0,
        }
    }

    /// Output activation element count (memory traffic per inference).
    pub fn output_activations(&self) -> u64 {
        self.output().volume() as u64
    }

    /// True for layers that perform MACs on a weight bank.
    pub fn is_mac_layer(&self) -> bool {
        matches!(
            self.kind,
            LayerKind::Conv2d { .. } | LayerKind::Dense { .. } | LayerKind::SelfAttention { .. }
        )
    }

    /// The GEMM view of a MAC layer: `(rows, cols, vectors, groups)` where
    /// the weight matrix is `rows × cols` per group and `vectors` input
    /// vectors stream through each tile (= output spatial positions for a
    /// convolution, 1 for a dense layer).
    ///
    /// Returns `None` for non-MAC layers.
    pub fn gemm_view(&self) -> Option<GemmView> {
        let i = self.input;
        match self.kind {
            LayerKind::Conv2d { out_c, kernel, groups, .. } => {
                let o = self.output();
                Some(GemmView {
                    rows: out_c / groups,
                    cols: (i.c / groups) * kernel * kernel,
                    vectors: o.h * o.w,
                    groups,
                })
            }
            LayerKind::Dense { out_features } => Some(GemmView {
                rows: out_features,
                cols: i.volume(),
                vectors: 1,
                groups: 1,
            }),
            // Per head: the score GEMM is seq×d_head weights (K) streamed
            // by seq queries, and the context GEMM is the mirror-image
            // d_head×seq (Vᵀ) streamed by seq probability rows — two
            // same-cost tile groups per head, hence `2·heads` groups of a
            // seq×d_head tile walked by seq vectors.
            LayerKind::SelfAttention { heads, .. } => Some(GemmView {
                rows: i.h,
                cols: i.c / heads,
                vectors: i.h,
                groups: 2 * heads,
            }),
            _ => None,
        }
    }
}

/// A MAC layer lowered to matrix form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GemmView {
    /// Weight-matrix rows per group (output channels / features).
    pub rows: usize,
    /// Weight-matrix columns per group (receptive-field size).
    pub cols: usize,
    /// Input vectors streamed per tile (output positions).
    pub vectors: usize,
    /// Independent channel groups.
    pub groups: usize,
}

impl GemmView {
    /// Sanity identity: MACs = groups · rows · cols · vectors.
    pub fn macs(&self) -> u64 {
        self.groups as u64 * self.rows as u64 * self.cols as u64 * self.vectors as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(
        input: TensorShape,
        out_c: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        groups: usize,
    ) -> LayerSpec {
        LayerSpec {
            name: "test".into(),
            kind: LayerKind::Conv2d { out_c, kernel, stride, padding, groups },
            input,
        }
    }

    #[test]
    fn conv_output_shape_standard() {
        // VGG-style 3×3 pad-1 conv preserves spatial size.
        let l = conv(TensorShape::new(3, 224, 224), 64, 3, 1, 1, 1);
        assert_eq!(l.output(), TensorShape::new(64, 224, 224));
    }

    #[test]
    fn conv_output_shape_strided() {
        // ResNet stem: 7×7 stride 2 pad 3 on 224 → 112.
        let l = conv(TensorShape::new(3, 224, 224), 64, 7, 2, 3, 1);
        assert_eq!(l.output(), TensorShape::new(64, 112, 112));
    }

    #[test]
    fn conv_macs_known_value() {
        // VGG-16 conv1_1: 64 × 224² × (3·3·3) = 86.7M MACs.
        let l = conv(TensorShape::new(3, 224, 224), 64, 3, 1, 1, 1);
        assert_eq!(l.macs(), 64 * 224 * 224 * 27);
        assert_eq!(l.params(), 64 * 27);
    }

    #[test]
    fn depthwise_conv_costs_divide_by_groups() {
        let shape = TensorShape::new(32, 112, 112);
        let full = conv(shape, 32, 3, 1, 1, 1);
        let depthwise = conv(shape, 32, 3, 1, 1, 32);
        assert_eq!(full.macs() / depthwise.macs(), 32);
        assert_eq!(full.params() / depthwise.params(), 32);
        assert_eq!(full.output(), depthwise.output());
    }

    #[test]
    fn dense_macs_equal_params() {
        let l = LayerSpec {
            name: "fc".into(),
            kind: LayerKind::Dense { out_features: 1000 },
            input: TensorShape::new(2048, 1, 1),
        };
        assert_eq!(l.macs(), 2_048_000);
        assert_eq!(l.params(), 2_048_000);
        assert_eq!(l.output(), TensorShape::new(1000, 1, 1));
    }

    #[test]
    fn pool_layers_have_no_macs() {
        let p = LayerSpec {
            name: "pool".into(),
            kind: LayerKind::MaxPool { size: 3, stride: 2, padding: 0 },
            input: TensorShape::new(64, 112, 112),
        };
        assert_eq!(p.macs(), 0);
        assert_eq!(p.params(), 0);
        assert_eq!(p.output(), TensorShape::new(64, 55, 55));
    }

    #[test]
    fn merge_layers_shape_arithmetic() {
        let add = LayerSpec {
            name: "add".into(),
            kind: LayerKind::Add,
            input: TensorShape::new(256, 56, 56),
        };
        assert_eq!(add.output(), add.input);
        let cat = LayerSpec {
            name: "cat".into(),
            kind: LayerKind::Concat { extra_c: 128 },
            input: TensorShape::new(64, 28, 28),
        };
        assert_eq!(cat.output(), TensorShape::new(192, 28, 28));
    }

    #[test]
    fn gemm_view_macs_identity() {
        let l = conv(TensorShape::new(3, 224, 224), 96, 11, 4, 2, 1);
        let g = l.gemm_view().unwrap();
        assert_eq!(g.macs(), l.macs());
        let d = LayerSpec {
            name: "fc".into(),
            kind: LayerKind::Dense { out_features: 10 },
            input: TensorShape::new(64, 1, 1),
        };
        let g = d.gemm_view().unwrap();
        assert_eq!(g.vectors, 1);
        assert_eq!(g.macs(), d.macs());
    }

    #[test]
    fn self_attention_costs_and_gemm_view() {
        // ViT-tiny shape: d_model 192, 196 tokens, 3 heads.
        let a = LayerSpec {
            name: "attn".into(),
            kind: LayerKind::SelfAttention { heads: 3, causal: false },
            input: TensorShape::new(192, 196, 1),
        };
        assert_eq!(a.output(), a.input);
        assert_eq!(a.macs(), 2 * 192 * 196 * 196);
        assert_eq!(a.params(), 0, "K/V writes are cache traffic, not parameters");
        assert!(a.is_mac_layer());
        let g = a.gemm_view().unwrap();
        assert_eq!((g.rows, g.cols, g.vectors, g.groups), (196, 64, 196, 6));
        assert_eq!(g.macs(), a.macs());
    }

    #[test]
    fn causal_attention_same_streamed_cost() {
        // The mask is applied digitally; the array streams the full
        // score rectangle either way.
        let mk = |causal| LayerSpec {
            name: "attn".into(),
            kind: LayerKind::SelfAttention { heads: 4, causal },
            input: TensorShape::new(256, 64, 1),
        };
        assert_eq!(mk(true).macs(), mk(false).macs());
        assert_eq!(mk(true).gemm_view(), mk(false).gemm_view());
    }

    #[test]
    fn layer_norm_is_digital_only() {
        let ln = LayerSpec {
            name: "ln".into(),
            kind: LayerKind::LayerNorm,
            input: TensorShape::new(256, 16, 1),
        };
        assert_eq!(ln.output(), ln.input);
        assert_eq!(ln.macs(), 0);
        assert_eq!(ln.params(), 512);
        assert!(!ln.is_mac_layer());
        assert!(ln.gemm_view().is_none());
    }

    #[test]
    fn global_pool_flattens_spatial() {
        let g = LayerSpec {
            name: "gap".into(),
            kind: LayerKind::GlobalAvgPool,
            input: TensorShape::new(1280, 7, 7),
        };
        assert_eq!(g.output(), TensorShape::new(1280, 1, 1));
        assert!(g.gemm_view().is_none());
    }
}
