//! Typed errors for workload lookup and validation.

use std::fmt;

/// Everything that can go wrong resolving or validating a model spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// No model in the zoo matches the requested name.
    UnknownModel {
        /// The name as the caller gave it.
        name: String,
    },
    /// A model spec has no layers.
    EmptyModel {
        /// Name of the offending model.
        model: String,
    },
    /// Two layers in one model share a name.
    DuplicateLayer {
        /// Name of the offending model.
        model: String,
        /// The repeated layer name.
        layer: String,
    },
    /// A layer's output shape has a zero dimension.
    EmptyLayerOutput {
        /// Name of the offending model.
        model: String,
        /// The layer whose output collapsed.
        layer: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::UnknownModel { name } => {
                write!(
                    f,
                    "unknown model {name:?}; known models: {}",
                    crate::zoo::KNOWN_MODELS.join(", ")
                )
            }
            WorkloadError::EmptyModel { model } => write!(f, "model {model:?} has no layers"),
            WorkloadError::DuplicateLayer { model, layer } => {
                write!(f, "model {model:?} has a duplicate layer name {layer:?}")
            }
            WorkloadError::EmptyLayerOutput { model, layer } => {
                write!(f, "model {model:?} layer {layer:?} has an empty output shape")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_model_lists_the_zoo() {
        let e = WorkloadError::UnknownModel { name: "transformer".into() };
        let msg = e.to_string();
        assert!(msg.contains("transformer") && msg.contains("vgg16"), "{msg}");
    }

    #[test]
    fn validation_errors_name_the_offender() {
        let e = WorkloadError::DuplicateLayer { model: "m".into(), layer: "conv1".into() };
        assert!(e.to_string().contains("duplicate"), "{e}");
        let e = WorkloadError::EmptyLayerOutput { model: "m".into(), layer: "pool".into() };
        assert!(e.to_string().contains("empty output"), "{e}");
    }
}
