//! The five CNNs of the paper's evaluation, shape-exact.
//!
//! §IV: "We evaluate the performance of Trident on CNN models GoogleNet,
//! MobileNet, VGG-16, AlexNet, and ResNet-50 … The image input to each of
//! these CNN models is assumed to have dimensions of 224×224×3."
//!
//! Topologies follow the original publications; branching blocks are
//! flattened per [`crate::model::ModelSpec`]'s convention. Tests pin the
//! aggregate MAC/parameter counts against the published values.

use crate::error::WorkloadError;
use crate::layer::{LayerKind, TensorShape};
use crate::model::{ModelBuilder, ModelSpec};

/// The paper's 224×224 RGB input.
pub const INPUT_224: TensorShape = TensorShape::new(3, 224, 224);

/// AlexNet (Krizhevsky 2012): 5 convolutions (two grouped) + 3 dense.
pub fn alexnet() -> ModelSpec {
    let mut b = ModelBuilder::new("AlexNet", INPUT_224);
    b.conv("conv1", 96, 11, 4, 2)
        .maxpool("pool1", 3, 2)
        .conv_grouped("conv2", 256, 5, 1, 2, 2)
        .maxpool("pool2", 3, 2)
        .conv("conv3", 384, 3, 1, 1)
        .conv_grouped("conv4", 384, 3, 1, 1, 2)
        .conv_grouped("conv5", 256, 3, 1, 1, 2)
        .maxpool("pool5", 3, 2)
        .dense("fc6", 4096)
        .dense("fc7", 4096)
        .dense("fc8", 1000);
    b.build()
}

/// VGG-16 (Simonyan & Zisserman 2014): 13 3×3 convolutions + 3 dense.
pub fn vgg16() -> ModelSpec {
    let mut b = ModelBuilder::new("VGG-16", INPUT_224);
    let blocks: &[(usize, usize)] = &[(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    for (stage, &(channels, convs)) in blocks.iter().enumerate() {
        for c in 0..convs {
            b.conv(format!("conv{}_{}", stage + 1, c + 1), channels, 3, 1, 1);
        }
        b.maxpool(format!("pool{}", stage + 1), 2, 2);
    }
    b.dense("fc6", 4096).dense("fc7", 4096).dense("fc8", 1000);
    b.build()
}

/// One GoogleNet inception module.
///
/// Branches: 1×1; 1×1→3×3; 1×1→5×5; 3×3 maxpool→1×1 projection.
#[allow(clippy::too_many_arguments)]
fn inception(
    b: &mut ModelBuilder,
    name: &str,
    c1: usize,
    c3r: usize,
    c3: usize,
    c5r: usize,
    c5: usize,
    pool_proj: usize,
) {
    let fork = b.current_shape();
    b.conv(format!("{name}_1x1"), c1, 1, 1, 0);
    b.set_shape(fork);
    b.conv(format!("{name}_3x3_reduce"), c3r, 1, 1, 0)
        .conv(format!("{name}_3x3"), c3, 3, 1, 1);
    b.set_shape(fork);
    b.conv(format!("{name}_5x5_reduce"), c5r, 1, 1, 0)
        .conv(format!("{name}_5x5"), c5, 5, 1, 2);
    b.set_shape(fork);
    b.push(format!("{name}_pool"), LayerKind::MaxPool { size: 3, stride: 1, padding: 1 })
        .conv(format!("{name}_pool_proj"), pool_proj, 1, 1, 0);
    // Running shape is the pool-proj branch; concat appends the others.
    b.push(format!("{name}_concat"), LayerKind::Concat { extra_c: c1 + c3 + c5 });
}

/// GoogleNet / Inception-v1 (Szegedy 2015): stem + 9 inception modules.
pub fn googlenet() -> ModelSpec {
    let mut b = ModelBuilder::new("GoogleNet", INPUT_224);
    b.conv("conv1", 64, 7, 2, 3)
        .push("pool1", LayerKind::MaxPool { size: 3, stride: 2, padding: 1 })
        .conv("conv2_reduce", 64, 1, 1, 0)
        .conv("conv2", 192, 3, 1, 1)
        .push("pool2", LayerKind::MaxPool { size: 3, stride: 2, padding: 1 });
    inception(&mut b, "3a", 64, 96, 128, 16, 32, 32);
    inception(&mut b, "3b", 128, 128, 192, 32, 96, 64);
    b.push("pool3", LayerKind::MaxPool { size: 3, stride: 2, padding: 1 });
    inception(&mut b, "4a", 192, 96, 208, 16, 48, 64);
    inception(&mut b, "4b", 160, 112, 224, 24, 64, 64);
    inception(&mut b, "4c", 128, 128, 256, 24, 64, 64);
    inception(&mut b, "4d", 112, 144, 288, 32, 64, 64);
    inception(&mut b, "4e", 256, 160, 320, 32, 128, 128);
    b.push("pool4", LayerKind::MaxPool { size: 3, stride: 2, padding: 1 });
    inception(&mut b, "5a", 256, 160, 320, 32, 128, 128);
    inception(&mut b, "5b", 384, 192, 384, 48, 128, 128);
    b.push("gap", LayerKind::GlobalAvgPool).dense("fc", 1000);
    b.build_branched()
}

/// One ResNet-v1 bottleneck: 1×1 (stride) → 3×3 → 1×1, plus shortcut.
fn bottleneck(b: &mut ModelBuilder, name: &str, mid: usize, out: usize, stride: usize) {
    let fork = b.current_shape();
    let project = stride != 1 || fork.c != out;
    b.conv(format!("{name}_1x1a"), mid, 1, stride, 0)
        .conv(format!("{name}_3x3"), mid, 3, 1, 1)
        .conv(format!("{name}_1x1b"), out, 1, 1, 0);
    let main_out = b.current_shape();
    if project {
        b.set_shape(fork);
        b.conv(format!("{name}_proj"), out, 1, stride, 0);
    }
    b.set_shape(main_out);
    b.push(format!("{name}_add"), LayerKind::Add);
}

/// ResNet-50 (He 2015): stem + (3, 4, 6, 3) bottleneck stages.
pub fn resnet50() -> ModelSpec {
    let mut b = ModelBuilder::new("ResNet-50", INPUT_224);
    b.conv("conv1", 64, 7, 2, 3)
        .push("pool1", LayerKind::MaxPool { size: 3, stride: 2, padding: 1 });
    let stages: &[(usize, usize, usize, usize)] =
        &[(64, 256, 3, 1), (128, 512, 4, 2), (256, 1024, 6, 2), (512, 2048, 3, 2)];
    for (s, &(mid, out, blocks, first_stride)) in stages.iter().enumerate() {
        for blk in 0..blocks {
            let stride = if blk == 0 { first_stride } else { 1 };
            bottleneck(&mut b, &format!("res{}_{}", s + 2, blk), mid, out, stride);
        }
    }
    b.push("gap", LayerKind::GlobalAvgPool).dense("fc", 1000);
    b.build_branched()
}

/// One MobileNetV2 inverted residual block.
fn inverted_residual(b: &mut ModelBuilder, name: &str, expand: usize, out: usize, stride: usize) {
    let fork = b.current_shape();
    let hidden = fork.c * expand;
    if expand != 1 {
        b.conv(format!("{name}_expand"), hidden, 1, 1, 0);
    }
    b.conv_grouped(format!("{name}_dw"), hidden, 3, stride, 1, hidden)
        .conv(format!("{name}_project"), out, 1, 1, 0);
    if stride == 1 && fork.c == out {
        b.push(format!("{name}_add"), LayerKind::Add);
    }
}

/// MobileNetV2 (Sandler 2018): depthwise-separable inverted residuals.
pub fn mobilenet_v2() -> ModelSpec {
    let mut b = ModelBuilder::new("MobileNetV2", INPUT_224);
    b.conv("conv1", 32, 3, 2, 1);
    // (expansion t, output channels c, repeats n, first stride s)
    let blocks: &[(usize, usize, usize, usize)] = &[
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    for (g, &(t, c, n, s)) in blocks.iter().enumerate() {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            inverted_residual(&mut b, &format!("block{}_{}", g + 1, i), t, c, stride);
        }
    }
    b.conv("conv_last", 1280, 1, 1, 0)
        .push("gap", LayerKind::GlobalAvgPool)
        .dense("fc", 1000);
    b.build_branched()
}

/// All five evaluation models in the order the paper's figures use.
pub fn paper_models() -> Vec<ModelSpec> {
    vec![alexnet(), vgg16(), googlenet(), mobilenet_v2(), resnet50()]
}

/// LeNet-5 (LeCun 1998): not in the paper's evaluation, but the classic
/// tiny edge workload — small enough to be fully weight-resident on a
/// 44-PE Trident, which makes it the natural demo for the §III-A
/// "pre-program everything once" regime.
pub fn lenet5() -> ModelSpec {
    let mut b = ModelBuilder::new("LeNet-5", TensorShape::new(1, 32, 32));
    b.conv("c1", 6, 5, 1, 0)
        .push("s2", LayerKind::AvgPool { size: 2, stride: 2 })
        .conv("c3", 16, 5, 1, 0)
        .push("s4", LayerKind::AvgPool { size: 2, stride: 2 })
        .conv("c5", 120, 5, 1, 0)
        .dense("f6", 84)
        .dense("output", 10);
    b.build()
}

/// ViT-Tiny (Touvron 2021, DeiT-Ti): 16×16 patch embed on 224×224 →
/// 196 tokens at `d_model = 192`, 12 pre-norm encoder blocks with 3
/// heads and a 4× MLP, mean-pool head to 1000 classes.
///
/// Token sequences ride the CNN shape convention as `c = d_model`,
/// `h = seq`, `w = 1`, so every projection is a 1×1 convolution whose
/// `gemm_view` streams `seq` vectors — the photonic mapping works
/// unchanged. The class token is folded into mean pooling (196 tokens,
/// not 197), which keeps the counts within ~1% of the published 1.26
/// GMACs / 5.7M parameters.
pub fn vit_tiny() -> ModelSpec {
    let (d_model, heads, depth, d_ff) = (192, 3, 12, 768);
    let mut b = ModelBuilder::new("ViT-Tiny", INPUT_224);
    b.conv("patch_embed", d_model, 16, 16, 0);
    // 14×14 patch grid → a 196-token sequence.
    let grid = b.current_shape();
    b.set_shape(TensorShape::new(d_model, grid.h * grid.w, 1));
    for blk in 0..depth {
        transformer_block(&mut b, &format!("blk{blk}"), heads, false, d_ff);
    }
    b.layer_norm("ln_final")
        .push("pool", LayerKind::GlobalAvgPool)
        .dense("head", 1000);
    b.build_branched()
}

/// A small GPT-style decoder: 6 pre-norm causal blocks at
/// `d_model = 256`, 4 heads, 4× MLP, 256-token context, 4096-entry
/// vocabulary head. Sized for the edge-serving regime (≈1.7 GMACs per
/// full-context forward) rather than any published checkpoint, so the
/// tests pin its counts by closed form instead of literature values.
/// Token/position embedding lookups are table reads, not MACs, and are
/// omitted — the same convention the CNN zoo uses for input handling.
pub fn gpt_decoder() -> ModelSpec {
    let (d_model, heads, depth, d_ff, seq, vocab) = (256, 4, 6, 1024, 256, 4096);
    let mut b = ModelBuilder::new("GPT-Decoder", TensorShape::new(d_model, seq, 1));
    for blk in 0..depth {
        transformer_block(&mut b, &format!("blk{blk}"), heads, true, d_ff);
    }
    // Per-token LM head = another 1×1 projection over the sequence.
    b.layer_norm("ln_final").conv("lm_head", vocab, 1, 1, 0);
    b.build()
}

/// One pre-norm transformer block: LN → QKV projections → attention
/// core → output projection → residual → LN → FFN → residual.
fn transformer_block(b: &mut ModelBuilder, name: &str, heads: usize, causal: bool, d_ff: usize) {
    let d_model = b.current_shape().c;
    b.layer_norm(format!("{name}_ln1"))
        .conv(format!("{name}_q"), d_model, 1, 1, 0)
        .conv(format!("{name}_k"), d_model, 1, 1, 0)
        .conv(format!("{name}_v"), d_model, 1, 1, 0)
        .self_attention(format!("{name}_attn"), heads, causal)
        .conv(format!("{name}_proj"), d_model, 1, 1, 0)
        .push(format!("{name}_res1"), LayerKind::Add)
        .layer_norm(format!("{name}_ln2"))
        .conv(format!("{name}_ffn1"), d_ff, 1, 1, 0)
        .conv(format!("{name}_ffn2"), d_model, 1, 1, 0)
        .push(format!("{name}_res2"), LayerKind::Add);
}

/// The two transformer workloads, in Table IV/V row order.
pub fn transformer_models() -> Vec<ModelSpec> {
    vec![vit_tiny(), gpt_decoder()]
}

/// Canonical lookup keys [`try_by_name`] accepts (aliases not listed).
pub const KNOWN_MODELS: &[&str] =
    &["alexnet", "vgg16", "googlenet", "mobilenetv2", "resnet50", "lenet5", "vittiny", "gptdecoder"];

/// Look a model up by a user-facing name (case/punctuation-insensitive).
pub fn by_name(name: &str) -> Option<ModelSpec> {
    try_by_name(name).ok()
}

/// Like [`by_name`], but an unknown name comes back as a typed error that
/// lists the models the zoo does know — the variant CLI front-ends want.
pub fn try_by_name(name: &str) -> Result<ModelSpec, WorkloadError> {
    let key: String =
        name.chars().filter(|c| c.is_ascii_alphanumeric()).collect::<String>().to_lowercase();
    match key.as_str() {
        "alexnet" => Ok(alexnet()),
        "vgg16" => Ok(vgg16()),
        "googlenet" => Ok(googlenet()),
        "mobilenetv2" | "mobilenet" => Ok(mobilenet_v2()),
        "resnet50" => Ok(resnet50()),
        "lenet5" | "lenet" => Ok(lenet5()),
        "vittiny" | "vit" | "deitti" => Ok(vit_tiny()),
        "gptdecoder" | "gpt" => Ok(gpt_decoder()),
        _ => Err(WorkloadError::UnknownModel { name: name.to_string() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Assert `value` lies within `tol` (relative) of `expected`.
    fn within(value: u64, expected: u64, tol: f64, what: &str) {
        let rel = (value as f64 - expected as f64).abs() / expected as f64;
        assert!(
            rel <= tol,
            "{what}: got {value}, expected ~{expected} (off by {:.1}%)",
            rel * 100.0
        );
    }

    #[test]
    fn alexnet_counts_match_publication() {
        let m = alexnet();
        within(m.total_params(), 61_000_000, 0.03, "AlexNet params");
        within(m.total_macs(), 724_000_000, 0.05, "AlexNet MACs");
        assert_eq!(m.mac_layer_count(), 8);
    }

    #[test]
    fn vgg16_counts_match_publication() {
        let m = vgg16();
        within(m.total_params(), 138_000_000, 0.02, "VGG-16 params");
        within(m.total_macs(), 15_470_000_000, 0.02, "VGG-16 MACs");
        assert_eq!(m.mac_layer_count(), 16);
    }

    #[test]
    fn googlenet_counts_match_publication() {
        let m = googlenet();
        within(m.total_params(), 7_000_000, 0.10, "GoogleNet params");
        within(m.total_macs(), 1_580_000_000, 0.10, "GoogleNet MACs");
        // conv1 + conv2_reduce + conv2 + 9 modules × 6 convs + fc = 58.
        assert_eq!(m.mac_layer_count(), 58);
    }

    #[test]
    fn resnet50_counts_match_publication() {
        let m = resnet50();
        within(m.total_params(), 25_500_000, 0.03, "ResNet-50 params");
        // ResNet-50 v1 (stride on the first 1×1): ~3.86 GMACs.
        within(m.total_macs(), 3_860_000_000, 0.10, "ResNet-50 MACs");
    }

    #[test]
    fn mobilenetv2_counts_match_publication() {
        let m = mobilenet_v2();
        within(m.total_params(), 3_400_000, 0.10, "MobileNetV2 params");
        within(m.total_macs(), 300_000_000, 0.10, "MobileNetV2 MACs");
    }

    #[test]
    fn googlenet_shapes_follow_the_paper_table() {
        let m = googlenet();
        // Find the 3a concat: output must be 256×28×28.
        let concat = m.layers.iter().find(|l| l.name == "3a_concat").unwrap();
        assert_eq!(concat.output(), TensorShape::new(256, 28, 28));
        let concat5b = m.layers.iter().find(|l| l.name == "5b_concat").unwrap();
        assert_eq!(concat5b.output(), TensorShape::new(1024, 7, 7));
    }

    #[test]
    fn resnet50_final_shape_is_2048() {
        let m = resnet50();
        let gap = m.layers.iter().find(|l| l.name == "gap").unwrap();
        assert_eq!(gap.input, TensorShape::new(2048, 7, 7));
    }

    #[test]
    fn mobilenet_final_shape_is_1280() {
        let m = mobilenet_v2();
        let gap = m.layers.iter().find(|l| l.name == "gap").unwrap();
        assert_eq!(gap.input, TensorShape::new(1280, 7, 7));
    }

    #[test]
    fn paper_models_order_and_count() {
        let models = paper_models();
        let names: Vec<_> = models.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["AlexNet", "VGG-16", "GoogleNet", "MobileNetV2", "ResNet-50"]);
    }

    #[test]
    fn parameter_ordering_matches_the_paper() {
        // §V-B: "from 4 million for GoogleNet to 138 million for VGG-16"
        // (the 4M figure counts only a subset; the ordering is what
        // matters): MobileNetV2 < GoogleNet < ResNet-50 < AlexNet < VGG-16.
        let p = |m: &ModelSpec| m.total_params();
        let (a, v, g, mb, r) =
            (p(&alexnet()), p(&vgg16()), p(&googlenet()), p(&mobilenet_v2()), p(&resnet50()));
        assert!(mb < g && g < r && r < a && a < v);
    }

    #[test]
    fn lenet5_counts_match_publication() {
        let m = lenet5();
        // LeNet-5 conv+fc weights ≈ 61k parameters.
        within(m.total_params(), 61_000, 0.05, "LeNet-5 params");
        assert_eq!(m.mac_layer_count(), 5);
        // c5 collapses 16×5×5 to 120×1×1.
        let c5 = m.layers.iter().find(|l| l.name == "c5").unwrap();
        assert_eq!(c5.output(), TensorShape::new(120, 1, 1));
    }

    #[test]
    fn vit_tiny_counts_match_publication() {
        let m = vit_tiny();
        // DeiT-Ti: ~5.7M parameters, ~1.26 GMACs at 224².
        within(m.total_params(), 5_700_000, 0.02, "ViT-Tiny params");
        within(m.total_macs(), 1_260_000_000, 0.02, "ViT-Tiny MACs");
        // Patch embed + 12 × (q,k,v,attn,proj,ffn1,ffn2) + head = 86.
        assert_eq!(m.mac_layer_count(), 86);
        let attn = m.layers.iter().find(|l| l.name == "blk0_attn").unwrap();
        assert_eq!(attn.input, TensorShape::new(192, 196, 1));
        assert_eq!(attn.macs(), 2 * 192 * 196 * 196);
    }

    #[test]
    fn gpt_decoder_counts_match_closed_form() {
        let m = gpt_decoder();
        let (d, ff, seq, vocab, depth) = (256u64, 1024u64, 256u64, 4096u64, 6u64);
        // Per block: 4 projections + 2 FFN GEMMs + the attention core.
        let block_macs = 4 * d * d * seq + 2 * d * ff * seq + 2 * d * seq * seq;
        let block_params = 4 * d * d + 2 * d * ff + 2 * 2 * d;
        assert_eq!(m.total_macs(), depth * block_macs + vocab * d * seq);
        assert_eq!(m.total_params(), depth * block_params + 2 * d + vocab * d);
        // Every attention layer is causal.
        for l in &m.layers {
            if let LayerKind::SelfAttention { causal, heads } = l.kind {
                assert!(causal);
                assert_eq!(heads, 4);
            }
        }
    }

    #[test]
    fn transformer_models_order_and_names() {
        let names: Vec<_> =
            transformer_models().iter().map(|m| m.name.clone()).collect();
        assert_eq!(names, vec!["ViT-Tiny", "GPT-Decoder"]);
        for m in transformer_models() {
            m.validate().unwrap();
        }
    }

    #[test]
    fn transformer_zoo_keys_resolve() {
        assert_eq!(by_name("ViT-Tiny").unwrap().name, "ViT-Tiny");
        assert_eq!(by_name("vit").unwrap().name, "ViT-Tiny");
        assert_eq!(by_name("gpt-decoder").unwrap().name, "GPT-Decoder");
        assert_eq!(by_name("GPT").unwrap().name, "GPT-Decoder");
    }

    #[test]
    fn by_name_resolves_aliases() {
        assert_eq!(by_name("VGG-16").unwrap().name, "VGG-16");
        assert_eq!(by_name("mobilenetv2").unwrap().name, "MobileNetV2");
        assert_eq!(by_name("ResNet-50").unwrap().name, "ResNet-50");
        assert_eq!(by_name("lenet").unwrap().name, "LeNet-5");
        assert!(by_name("transformer").is_none());
    }

    #[test]
    fn try_by_name_reports_unknown_models_with_suggestions() {
        assert_eq!(try_by_name("VGG-16").unwrap().name, "VGG-16");
        let err = try_by_name("transformer").unwrap_err();
        assert_eq!(err, WorkloadError::UnknownModel { name: "transformer".into() });
        let msg = err.to_string();
        assert!(msg.contains("vgg16") && msg.contains("resnet50"), "{msg}");
    }

    #[test]
    fn vgg_dominates_macs() {
        let macs = |m: &ModelSpec| m.total_macs();
        assert!(macs(&vgg16()) > macs(&resnet50()));
        assert!(macs(&resnet50()) > macs(&googlenet()));
        assert!(macs(&googlenet()) > macs(&mobilenet_v2()));
    }
}
