//! Weight-stationary dataflow mapping (the Maestro-substitute core).
//!
//! §IV of the paper: "a weight stationary dataflow is used." Each MAC
//! layer is lowered to matrix form ([`crate::layer::GemmView`]) and tiled
//! onto J×N weight banks spread across P processing elements:
//!
//! * every weight tile is programmed **once** per inference pass and all
//!   of its input vectors stream through before the bank is re-tuned
//!   (that is what "weight stationary" buys: tuning amortizes over the
//!   layer's full output extent);
//! * tiles execute `P` at a time — one pass per `P` tiles;
//! * column-tiled layers need electronic partial-sum accumulation, which
//!   is charged separately because it is exactly the traffic the paper's
//!   LDSU/activation design avoids *between* layers but not *within* a
//!   column-split layer.

use crate::layer::LayerSpec;
use crate::model::ModelSpec;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// PE-array geometry a workload is mapped onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataflowModel {
    /// Weight-bank rows per PE (J).
    pub bank_rows: usize,
    /// Weight-bank columns per PE (N) — the WDM channel count.
    pub bank_cols: usize,
    /// Number of PEs tiling in parallel.
    pub num_pes: usize,
}

impl DataflowModel {
    /// Trident's evaluated configuration: 44 PEs × (16×16 = 256 MRRs).
    pub const fn trident_paper() -> Self {
        Self { bank_rows: 16, bank_cols: 16, num_pes: 44 }
    }

    /// MRRs in one PE's weight bank.
    pub fn mrrs_per_pe(&self) -> usize {
        self.bank_rows * self.bank_cols
    }

    /// MACs available per streamed vector across the whole array.
    pub fn macs_per_vector(&self) -> u64 {
        (self.mrrs_per_pe() * self.num_pes) as u64
    }

    /// Map one MAC layer onto the array.
    ///
    /// Returns `None` for layers without a GEMM view (pool/merge layers).
    pub fn map_layer(&self, layer: &LayerSpec) -> Option<LayerMapping> {
        let g = layer.gemm_view()?;
        let row_tiles = g.rows.div_ceil(self.bank_rows) as u64;
        let col_tiles = g.cols.div_ceil(self.bank_cols) as u64;
        let tiles = if g.groups > 1
            && g.cols <= self.bank_cols
            && g.rows <= self.bank_rows
        {
            // Channel packing for grouped/depthwise convolutions: each
            // group's receptive field occupies only `cols` of the bank's N
            // WDM channels, and different channels carry independent data,
            // so several groups share one tile's channel space (their rows
            // are disjoint too). Capacity is channel-bound:
            // `⌈groups·cols / N⌉` tiles instead of `groups`.
            (g.groups * g.cols).div_ceil(self.bank_cols) as u64
        } else {
            g.groups as u64 * row_tiles * col_tiles
        };
        let passes = tiles.div_ceil(self.num_pes as u64);
        let vectors = g.vectors as u64;
        let outputs = g.groups as u64 * g.rows as u64 * vectors;
        Some(LayerMapping {
            layer_name: layer.name.clone(),
            macs: layer.macs(),
            tiles,
            passes,
            vectors_per_tile: vectors,
            weight_writes: layer.params(),
            input_reads: g.groups as u64 * row_tiles * vectors * g.cols as u64,
            output_writes: outputs,
            psum_accumulations: outputs * (col_tiles - 1),
            activation_events: outputs,
        })
    }

    /// Map every MAC layer of a model (in parallel — models have dozens of
    /// layers and callers sweep many models × architectures). The
    /// filter-map keeps layer order, so mappings are identical at any
    /// thread count.
    pub fn map_model(&self, model: &ModelSpec) -> ModelMapping {
        let _span = if trident_obs::enabled() {
            trident_obs::span_owned(format!("dataflow.map_model.{}", model.name))
        } else {
            trident_obs::SpanGuard::disabled()
        };
        let layers: Vec<LayerMapping> =
            model.layers.par_iter().filter_map(|l| self.map_layer(l)).collect();
        trident_obs::add(trident_obs::Counter::DataflowLayersMapped, layers.len() as u64);
        trident_obs::add(
            trident_obs::Counter::DataflowTilesMapped,
            layers.iter().map(|l| l.tiles).sum(),
        );
        ModelMapping { model_name: model.name.clone(), layers }
    }
}

/// Cost counters for one layer under the mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerMapping {
    /// Layer name from the model spec.
    pub layer_name: String,
    /// MACs performed.
    pub macs: u64,
    /// Weight tiles occupied.
    pub tiles: u64,
    /// Sequential passes over the PE array (`ceil(tiles / P)`).
    pub passes: u64,
    /// Input vectors streamed through each tile.
    pub vectors_per_tile: u64,
    /// Weight programming events (one per parameter).
    pub weight_writes: u64,
    /// Activation elements read from cache.
    pub input_reads: u64,
    /// Output elements produced.
    pub output_writes: u64,
    /// Electronic partial-sum additions for column-split tiles.
    pub psum_accumulations: u64,
    /// Nonlinear activation firings (one per output element).
    pub activation_events: u64,
}

/// A whole model's mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelMapping {
    /// Model name.
    pub model_name: String,
    /// Per-MAC-layer mappings in network order.
    pub layers: Vec<LayerMapping>,
}

impl ModelMapping {
    /// Sum of a per-layer counter.
    fn total(&self, f: impl Fn(&LayerMapping) -> u64) -> u64 {
        self.layers.iter().map(f).sum()
    }

    /// Total MACs.
    pub fn total_macs(&self) -> u64 {
        self.total(|l| l.macs)
    }

    /// Total tiles across layers.
    pub fn total_tiles(&self) -> u64 {
        self.total(|l| l.tiles)
    }

    /// Total array passes.
    pub fn total_passes(&self) -> u64 {
        self.total(|l| l.passes)
    }

    /// Total weight writes.
    pub fn total_weight_writes(&self) -> u64 {
        self.total(|l| l.weight_writes)
    }

    /// Total cache reads (input activations).
    pub fn total_input_reads(&self) -> u64 {
        self.total(|l| l.input_reads)
    }

    /// Total outputs written.
    pub fn total_output_writes(&self) -> u64 {
        self.total(|l| l.output_writes)
    }

    /// Total electronic partial-sum additions.
    pub fn total_psum_accumulations(&self) -> u64 {
        self.total(|l| l.psum_accumulations)
    }

    /// Total activation firings.
    pub fn total_activation_events(&self) -> u64 {
        self.total(|l| l.activation_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{LayerKind, TensorShape};
    use crate::zoo;

    fn dense_layer(out: usize, inp: usize) -> LayerSpec {
        LayerSpec {
            name: "fc".into(),
            kind: LayerKind::Dense { out_features: out },
            input: TensorShape::new(inp, 1, 1),
        }
    }

    #[test]
    fn exact_fit_needs_one_tile() {
        let df = DataflowModel { bank_rows: 16, bank_cols: 16, num_pes: 4 };
        let m = df.map_layer(&dense_layer(16, 16)).unwrap();
        assert_eq!(m.tiles, 1);
        assert_eq!(m.passes, 1);
        assert_eq!(m.vectors_per_tile, 1);
        assert_eq!(m.weight_writes, 256);
        assert_eq!(m.psum_accumulations, 0, "single column tile needs no psum");
    }

    #[test]
    fn oversize_layer_tiles_and_passes() {
        let df = DataflowModel { bank_rows: 16, bank_cols: 16, num_pes: 4 };
        // 40×40 weights → 3×3 = 9 tiles → 3 passes on 4 PEs.
        let m = df.map_layer(&dense_layer(40, 40)).unwrap();
        assert_eq!(m.tiles, 9);
        assert_eq!(m.passes, 3);
        // Column split by 3 → 2 accumulations per output.
        assert_eq!(m.psum_accumulations, 40 * 2);
    }

    #[test]
    fn conv_vectors_are_output_positions() {
        let df = DataflowModel::trident_paper();
        let conv = LayerSpec {
            name: "c".into(),
            kind: LayerKind::Conv2d { out_c: 16, kernel: 3, stride: 1, padding: 1, groups: 1 },
            input: TensorShape::new(16, 28, 28),
        };
        let m = df.map_layer(&conv).unwrap();
        assert_eq!(m.vectors_per_tile, 28 * 28);
        // 16 rows fit; 144 cols → 9 col tiles.
        assert_eq!(m.tiles, 9);
        assert_eq!(m.output_writes, 16 * 28 * 28);
    }

    #[test]
    fn grouped_conv_multiplies_tiles() {
        let df = DataflowModel { bank_rows: 16, bank_cols: 16, num_pes: 44 };
        let shape = TensorShape::new(32, 14, 14);
        let grouped = LayerSpec {
            name: "dw".into(),
            kind: LayerKind::Conv2d { out_c: 32, kernel: 3, stride: 1, padding: 1, groups: 32 },
            input: shape,
        };
        let m = df.map_layer(&grouped).unwrap();
        // Channel packing: 32 groups × 9 taps = 288 channel-slots over
        // 16-channel banks → 18 tiles (not 32 one-per-group).
        assert_eq!(m.tiles, 18);
        assert_eq!(m.weight_writes, 32 * 9);
    }

    #[test]
    fn non_mac_layers_do_not_map() {
        let df = DataflowModel::trident_paper();
        let pool = LayerSpec {
            name: "p".into(),
            kind: LayerKind::MaxPool { size: 2, stride: 2, padding: 0 },
            input: TensorShape::new(64, 56, 56),
        };
        assert!(df.map_layer(&pool).is_none());
    }

    #[test]
    fn mapping_conserves_macs() {
        let df = DataflowModel::trident_paper();
        for model in zoo::paper_models() {
            let mapping = df.map_model(&model);
            assert_eq!(
                mapping.total_macs(),
                model.total_macs(),
                "{} MAC conservation",
                model.name
            );
            assert_eq!(
                mapping.total_weight_writes(),
                model.total_params(),
                "{} every weight programmed exactly once",
                model.name
            );
        }
    }

    #[test]
    fn passes_scale_down_with_more_pes() {
        let small = DataflowModel { bank_rows: 16, bank_cols: 16, num_pes: 8 };
        let large = DataflowModel { bank_rows: 16, bank_cols: 16, num_pes: 44 };
        let model = zoo::vgg16();
        assert!(
            small.map_model(&model).total_passes() > large.map_model(&model).total_passes()
        );
    }

    #[test]
    fn vgg_mapping_magnitudes_are_sane() {
        let df = DataflowModel::trident_paper();
        let m = df.map_model(&vgg_model());
        // VGG-16 has 138M params → 138M weight writes; tiles in the
        // hundreds of thousands (138M / 256 ≈ 540k).
        let tiles = m.total_tiles();
        assert!(tiles > 400_000 && tiles < 800_000, "tiles {tiles}");
        fn vgg_model() -> crate::model::ModelSpec {
            crate::zoo::vgg16()
        }
    }
}
