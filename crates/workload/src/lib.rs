//! # trident-workload
//!
//! CNN workload characterization — the reproduction's substitute for the
//! Maestro cost-model tool the paper used.
//!
//! The paper's evaluation needs, per network and per layer: MAC counts,
//! parameter counts, activation volumes, and a mapping of each layer onto
//! a weight-stationary photonic PE array (tiles, passes, streamed vectors,
//! cache traffic). This crate provides:
//!
//! * [`layer`] — typed layer specifications with exact shape arithmetic.
//! * [`model`] — whole-network descriptions with roll-ups.
//! * [`zoo`] — the five CNNs of the paper's evaluation (AlexNet, VGG-16,
//!   GoogleNet, ResNet-50, MobileNetV2) with 224×224×3 inputs, matching
//!   §IV ("The image input to each of these CNN models is assumed to have
//!   dimensions of 224×224×3").
//! * [`dataflow`] — weight-stationary tiling of each layer onto a J×N
//!   weight bank across P processing elements.
//! * [`kv`] — KV-cache read/write traffic closed forms for the
//!   decoder-style transformer workloads (DESIGN.md §16).

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_lossless))]

pub mod dataflow;
pub mod error;
pub mod kv;
pub mod layer;
pub mod model;
pub mod zoo;

pub use dataflow::{DataflowModel, LayerMapping, ModelMapping};
pub use error::WorkloadError;
pub use kv::KvCachePlan;
pub use layer::{LayerKind, LayerSpec, TensorShape};
pub use model::ModelSpec;
pub use zoo::{
    alexnet, by_name, googlenet, gpt_decoder, lenet5, mobilenet_v2, paper_models, resnet50,
    transformer_models, try_by_name, vgg16, vit_tiny,
};
