//! Whole-network descriptions and cost roll-ups.

use crate::error::WorkloadError;
use crate::layer::{LayerKind, LayerSpec, TensorShape};
use serde::{Deserialize, Serialize};

/// A network topology: an ordered list of layers with consistent shapes.
///
/// Branching topologies (inception modules, residual blocks) are recorded
/// *flattened*: every branch's layers appear in order, each carrying the
/// input shape it actually sees, followed by a merge layer (`Add` /
/// `Concat`). This loses nothing for cost analysis — MACs, parameters and
/// activation traffic are per-layer quantities — and matches how Maestro
/// consumes networks (a list of per-layer descriptors).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model name as used in the paper's figures.
    pub name: String,
    /// Input activation shape (224×224×3 for the paper's evaluation).
    pub input: TensorShape,
    /// Flattened layer list.
    pub layers: Vec<LayerSpec>,
}

impl ModelSpec {
    /// Create an empty model with an input shape.
    pub fn new(name: impl Into<String>, input: TensorShape) -> Self {
        Self { name: name.into(), input, layers: Vec::new() }
    }

    /// Total MACs for one inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerSpec::macs).sum()
    }

    /// Total trainable parameters.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(LayerSpec::params).sum()
    }

    /// Total output activations written across layers (one inference).
    pub fn total_activations(&self) -> u64 {
        self.layers.iter().map(LayerSpec::output_activations).sum()
    }

    /// MAC layers only (what maps onto weight banks).
    pub fn mac_layers(&self) -> impl Iterator<Item = &LayerSpec> {
        self.layers.iter().filter(|l| l.is_mac_layer())
    }

    /// Number of MAC layers.
    pub fn mac_layer_count(&self) -> usize {
        self.mac_layers().count()
    }

    /// Operations per inference counting one MAC as two ops
    /// (multiply + accumulate), the convention behind "TOPS".
    pub fn total_ops(&self) -> u64 {
        2 * self.total_macs()
    }

    /// Largest single-layer weight matrix (rows × cols per group), the
    /// quantity that decides how many tiles the biggest layer needs.
    pub fn max_layer_params(&self) -> u64 {
        self.layers.iter().map(LayerSpec::params).max().unwrap_or(0)
    }

    /// Arithmetic intensity in MACs per byte moved, assuming 8-bit weights
    /// and activations each touched once: the roofline x-coordinate that
    /// separates compute-bound networks (VGG's convolutions) from
    /// memory-bound ones (its fully connected layers).
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = (self.total_params() + self.total_activations()) as f64;
        if bytes == 0.0 {
            return 0.0;
        }
        self.total_macs() as f64 / bytes
    }

    /// Validate structural sanity: non-empty, unique layer names, and
    /// positive shapes everywhere. Returns a typed [`WorkloadError`] naming
    /// the offender on failure (the builders uphold these by construction;
    /// this guards hand-assembled or deserialized specs).
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.layers.is_empty() {
            return Err(WorkloadError::EmptyModel { model: self.name.clone() });
        }
        let mut seen = std::collections::BTreeSet::new();
        for layer in &self.layers {
            if !seen.insert(layer.name.as_str()) {
                return Err(WorkloadError::DuplicateLayer {
                    model: self.name.clone(),
                    layer: layer.name.clone(),
                });
            }
            let out = layer.output();
            if out.c == 0 || out.h == 0 || out.w == 0 {
                return Err(WorkloadError::EmptyLayerOutput {
                    model: self.name.clone(),
                    layer: layer.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Per-layer arithmetic intensity for MAC layers.
    pub fn layer_intensities(&self) -> Vec<(String, f64)> {
        self.mac_layers()
            .map(|l| {
                let bytes = (l.params() + l.output_activations()) as f64;
                (l.name.clone(), l.macs() as f64 / bytes.max(1.0))
            })
            .collect()
    }
}

/// Builder that threads activation shapes through a growing layer list.
///
/// `current_shape`/`set_shape` snapshot and restore the running shape so
/// inception/residual side paths can be described.
///
/// ```
/// use trident_workload::layer::TensorShape;
/// use trident_workload::model::ModelBuilder;
///
/// let mut b = ModelBuilder::new("toy", TensorShape::new(3, 32, 32));
/// b.conv("stem", 16, 3, 1, 1).maxpool("pool", 2, 2).dense("head", 10);
/// let model = b.build();
/// assert_eq!(model.mac_layer_count(), 2);
/// assert_eq!(model.total_params(), 16 * 27 + 10 * 16 * 16 * 16);
/// ```
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    model: ModelSpec,
    current: TensorShape,
}

impl ModelBuilder {
    /// Start building a model from an input shape.
    pub fn new(name: impl Into<String>, input: TensorShape) -> Self {
        Self { model: ModelSpec::new(name, input), current: input }
    }

    /// The shape flowing out of the last layer added.
    pub fn current_shape(&self) -> TensorShape {
        self.current
    }

    /// Rewind the running shape to a saved branch point.
    pub fn set_shape(&mut self, shape: TensorShape) {
        self.current = shape;
    }

    /// Append a layer whose input is the current shape.
    pub fn push(&mut self, name: impl Into<String>, kind: LayerKind) -> &mut Self {
        let spec = LayerSpec { name: name.into(), kind, input: self.current };
        self.current = spec.output();
        self.model.layers.push(spec);
        self
    }

    /// Standard convolution helper.
    pub fn conv(
        &mut self,
        name: impl Into<String>,
        out_c: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> &mut Self {
        self.push(name, LayerKind::Conv2d { out_c, kernel, stride, padding, groups: 1 })
    }

    /// Grouped/depthwise convolution helper.
    pub fn conv_grouped(
        &mut self,
        name: impl Into<String>,
        out_c: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        groups: usize,
    ) -> &mut Self {
        self.push(name, LayerKind::Conv2d { out_c, kernel, stride, padding, groups })
    }

    /// Max-pool helper.
    pub fn maxpool(&mut self, name: impl Into<String>, size: usize, stride: usize) -> &mut Self {
        self.push(name, LayerKind::MaxPool { size, stride, padding: 0 })
    }

    /// Multi-head self-attention helper (token sequence as `c = d_model`,
    /// `h = seq`, `w = 1`; shape-preserving).
    pub fn self_attention(&mut self, name: impl Into<String>, heads: usize, causal: bool) -> &mut Self {
        self.push(name, LayerKind::SelfAttention { heads, causal })
    }

    /// Row-wise LayerNorm helper (shape-preserving, digital LDSU path).
    pub fn layer_norm(&mut self, name: impl Into<String>) -> &mut Self {
        self.push(name, LayerKind::LayerNorm)
    }

    /// Dense helper.
    pub fn dense(&mut self, name: impl Into<String>, out_features: usize) -> &mut Self {
        // Dense layers consume the flattened activation.
        self.current = self.current.flattened();
        self.push(name, LayerKind::Dense { out_features })
    }

    /// Finish and validate: every consecutive pair of layers must agree on
    /// shapes (by construction they do; the check guards hand edits).
    pub fn build(self) -> ModelSpec {
        let mut shape = self.model.input;
        for layer in &self.model.layers {
            let expected = if matches!(layer.kind, LayerKind::Dense { .. }) {
                shape.flattened()
            } else {
                shape
            };
            assert_eq!(
                layer.input, expected,
                "layer {} input {:?} disagrees with running shape {:?}",
                layer.name, layer.input, expected
            );
            shape = layer.output();
        }
        self.model
    }

    /// Finish without the linear-chain validation (for models with
    /// branches, where flattened side paths legitimately break the chain).
    pub fn build_branched(self) -> ModelSpec {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_threads_shapes() {
        let mut b = ModelBuilder::new("toy", TensorShape::new(3, 32, 32));
        b.conv("c1", 8, 3, 1, 1).maxpool("p1", 2, 2).dense("fc", 10);
        let m = b.build();
        assert_eq!(m.layers.len(), 3);
        assert_eq!(m.layers[1].input, TensorShape::new(8, 32, 32));
        assert_eq!(m.layers[2].input, TensorShape::new(8 * 16 * 16, 1, 1));
        assert_eq!(m.total_params(), 8 * 27 + 10 * 8 * 16 * 16);
    }

    #[test]
    fn rollups_sum_layers() {
        let mut b = ModelBuilder::new("toy", TensorShape::new(1, 8, 8));
        b.conv("c1", 4, 3, 1, 1).dense("fc", 10);
        let m = b.build();
        let per_layer: u64 = m.layers.iter().map(|l| l.macs()).sum();
        assert_eq!(m.total_macs(), per_layer);
        assert_eq!(m.total_ops(), 2 * per_layer);
        assert_eq!(m.mac_layer_count(), 2);
    }

    #[test]
    #[should_panic]
    fn build_rejects_inconsistent_chain() {
        let mut b = ModelBuilder::new("bad", TensorShape::new(3, 32, 32));
        b.conv("c1", 8, 3, 1, 1);
        let mut m = b.build();
        // Corrupt the recorded input shape, then re-validate via a fresh
        // builder round-trip.
        m.layers[0].input = TensorShape::new(5, 32, 32);
        let rebuilt = ModelBuilder { model: m.clone(), current: m.input };
        let _ = rebuilt.build();
    }

    #[test]
    fn validate_accepts_zoo_and_rejects_duplicates() {
        for m in crate::zoo::paper_models() {
            assert!(m.validate().is_ok(), "{} failed validation", m.name);
        }
        let mut b = ModelBuilder::new("dup", TensorShape::new(1, 8, 8));
        b.conv("same", 4, 3, 1, 1).conv("same", 4, 3, 1, 1);
        let m = b.build();
        let err = m.validate().unwrap_err();
        assert_eq!(
            err,
            crate::error::WorkloadError::DuplicateLayer { model: "dup".into(), layer: "same".into() }
        );
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn arithmetic_intensity_orders_conv_above_dense() {
        let mut b = ModelBuilder::new("mixed", TensorShape::new(3, 32, 32));
        b.conv("conv", 16, 3, 1, 1).dense("fc", 10);
        let m = b.build();
        let intensities = m.layer_intensities();
        let conv = intensities.iter().find(|(n, _)| n == "conv").unwrap().1;
        let fc = intensities.iter().find(|(n, _)| n == "fc").unwrap().1;
        // Convs reuse each weight across all output positions; dense
        // layers touch each weight exactly once.
        assert!(conv > 10.0 * fc, "conv {conv} vs fc {fc}");
        assert!(fc < 1.1, "dense intensity is at most ~1 MAC/byte");
        assert!(m.arithmetic_intensity() > 0.0);
    }

    #[test]
    fn branch_snapshot_and_restore() {
        let mut b = ModelBuilder::new("branchy", TensorShape::new(16, 28, 28));
        let fork = b.current_shape();
        b.conv("branch_a", 32, 3, 1, 1);
        let a_out = b.current_shape();
        b.set_shape(fork);
        b.conv("branch_b", 8, 1, 1, 0);
        assert_eq!(a_out, TensorShape::new(32, 28, 28));
        assert_eq!(b.current_shape(), TensorShape::new(8, 28, 28));
    }
}
