//! The dynamic batcher: size-or-timeout batch close with deadline-aware
//! admission control.
//!
//! ## State machine
//!
//! The batcher holds one open batch (the *pending* queue) and a
//! monotone *generation* counter:
//!
//! * **admit** — the caller first runs the admission test
//!   ([`Batcher::should_shed`]): a request whose *estimated* completion
//!   time already exceeds its deadline is shed immediately (counted,
//!   never queued) — serving it would waste fleet time on a guaranteed
//!   SLO miss and push every queued request later. Admitted requests
//!   join the pending queue.
//! * **close on size** — the queue reaching `batch_max` closes the
//!   batch immediately ([`Batcher::close`] bumps the generation).
//! * **close on timeout** — when the queue goes empty→non-empty the
//!   caller arms a linger timer carrying the current generation. A
//!   timer whose generation is stale (the batch it was armed for
//!   already closed on size) is a no-op; a live timer closes whatever
//!   is pending. Generation tagging means timers never need cancelling
//!   — the event loop just drops stale ones.
//!
//! The batcher is pure bookkeeping over virtual time: no clocks, no
//! threads, no engine knowledge. Completion estimation lives with the
//! fleet (it owns the service-time model); the event loop wires the two
//! together.

use crate::Request;

/// Batch-close policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Close the batch as soon as this many requests are pending.
    pub batch_max: usize,
    /// Close a non-empty batch this long after its first request, ns.
    pub linger_ns: u64,
}

/// Outcome of offering one admitted request to the batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// Queue was empty; arm a linger timer for (deadline `at_ns`,
    /// generation `generation`).
    ArmTimer {
        /// Virtual time the timer should fire.
        at_ns: u64,
        /// Generation the timer belongs to.
        generation: u64,
    },
    /// Queue already open and still below the size trigger.
    Queued,
    /// Queue hit `batch_max`; the caller must close and dispatch now.
    Full,
}

/// The dynamic batcher state.
#[derive(Debug)]
pub struct Batcher {
    policy: BatchPolicy,
    pending: Vec<Request>,
    /// Storage handed back by [`Batcher::recycle`], reused as the next
    /// open batch so the close/dispatch cycle stops allocating once the
    /// capacity has grown to the steady batch size.
    spare: Option<Vec<Request>>,
    generation: u64,
}

impl Batcher {
    /// An empty batcher with the given policy (`batch_max` is clamped to
    /// at least 1).
    pub fn new(policy: BatchPolicy) -> Self {
        let policy =
            BatchPolicy { batch_max: policy.batch_max.max(1), linger_ns: policy.linger_ns };
        Self { policy, pending: Vec::new(), spare: None, generation: 0 }
    }

    /// Admission test: shed when the estimated completion time is past
    /// the request's deadline. `est_done_ns` comes from the fleet's
    /// service-time model at the arrival instant.
    pub fn should_shed(req: &Request, est_done_ns: u64) -> bool {
        est_done_ns > req.deadline_ns
    }

    /// Number of requests in the open batch.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Current batch generation (bumped on every close).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Queue an admitted request at virtual time `now_ns`.
    pub fn enqueue(&mut self, req: Request, now_ns: u64) -> Enqueue {
        let was_empty = self.pending.is_empty();
        self.pending.push(req);
        if self.pending.len() >= self.policy.batch_max {
            Enqueue::Full
        } else if was_empty {
            Enqueue::ArmTimer {
                at_ns: now_ns.saturating_add(self.policy.linger_ns),
                generation: self.generation,
            }
        } else {
            Enqueue::Queued
        }
    }

    /// Whether a linger timer with this generation is still live: the
    /// batch it was armed for has not closed and still holds requests.
    pub fn timer_live(&self, generation: u64) -> bool {
        generation == self.generation && !self.pending.is_empty()
    }

    /// Close the open batch: take the pending requests and bump the
    /// generation (invalidating any armed timer). The next open batch
    /// reuses any storage returned via [`Batcher::recycle`].
    pub fn close(&mut self) -> Vec<Request> {
        self.generation += 1;
        let next = self.spare.take().unwrap_or_default();
        std::mem::replace(&mut self.pending, next)
    }

    /// Hand a dispatched batch's storage back so the next open batch can
    /// reuse it instead of growing a fresh `Vec`.
    pub fn recycle(&mut self, mut batch: Vec<Request>) {
        batch.clear();
        self.spare = Some(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival: u64, deadline: u64) -> Request {
        Request { id, arrival_ns: arrival, deadline_ns: deadline, input: vec![0.0], label: 0 }
    }

    #[test]
    fn first_request_arms_a_timer_and_size_trigger_fills() {
        let mut b = Batcher::new(BatchPolicy { batch_max: 3, linger_ns: 100 });
        assert_eq!(
            b.enqueue(req(0, 10, 500), 10),
            Enqueue::ArmTimer { at_ns: 110, generation: 0 }
        );
        assert_eq!(b.enqueue(req(1, 20, 500), 20), Enqueue::Queued);
        assert_eq!(b.enqueue(req(2, 30, 500), 30), Enqueue::Full);
        let batch = b.close();
        assert_eq!(batch.len(), 3);
        assert_eq!(b.generation(), 1);
        assert_eq!(b.pending_len(), 0);
    }

    #[test]
    fn stale_timers_are_dead_and_live_timers_fire() {
        let mut b = Batcher::new(BatchPolicy { batch_max: 10, linger_ns: 100 });
        let Enqueue::ArmTimer { generation, .. } = b.enqueue(req(0, 0, 500), 0) else {
            panic!("first enqueue must arm a timer");
        };
        assert!(b.timer_live(generation));
        b.close();
        assert!(!b.timer_live(generation), "timer must die when its batch closes");
        // A fresh batch arms a fresh generation.
        let Enqueue::ArmTimer { generation: g2, .. } = b.enqueue(req(1, 200, 900), 200) else {
            panic!("empty->nonempty must arm a timer");
        };
        assert_ne!(generation, g2);
        assert!(b.timer_live(g2));
    }

    #[test]
    fn recycled_storage_backs_the_next_batch() {
        let mut b = Batcher::new(BatchPolicy { batch_max: 2, linger_ns: 100 });
        b.enqueue(req(0, 0, 500), 0);
        b.enqueue(req(1, 10, 500), 10);
        let batch = b.close();
        let cap = batch.capacity();
        assert!(cap >= 2);
        b.recycle(batch);
        b.enqueue(req(2, 20, 500), 20);
        b.enqueue(req(3, 30, 500), 30);
        let batch = b.close();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.capacity(), cap, "the recycled storage must be reused");
        assert_eq!(batch[0].id, 2);
    }

    #[test]
    fn admission_sheds_only_past_deadline_estimates() {
        let r = req(0, 0, 1000);
        assert!(!Batcher::should_shed(&r, 1000), "meeting the deadline exactly is admitted");
        assert!(Batcher::should_shed(&r, 1001));
    }
}
