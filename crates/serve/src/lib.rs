//! # trident-serve
//!
//! An inference **service** over a fleet of simulated Trident chips:
//! the layer that turns "one accelerator, one forward pass" into
//! "N replicas serving an open-loop request stream under an SLO" —
//! ROADMAP item 1, the step from chip simulation toward the
//! production-scale system the paper's edge positioning implies.
//!
//! The pieces, one module each:
//!
//! * [`traffic`] — deterministic open-loop arrival generation (seeded
//!   Poisson and bursty ON-OFF), counter-addressed like the PCM
//!   statistical model's `seeded_gaussian`: the n-th arrival is a pure
//!   function of `(seed, stream, n)`, never of wall clock or thread
//!   schedule.
//! * [`frontend`] — thread-per-core request preparation over MPSC
//!   channels; contiguous shards are reassembled in request order, so
//!   the prepared stream is byte-identical at any `TRIDENT_THREADS`.
//! * [`batcher`] — the dynamic batcher state machine: size-or-timeout
//!   batch close with generation-tagged timers, plus deadline-aware
//!   admission control that sheds requests whose estimated completion
//!   would already miss their SLO.
//! * [`fleet`] — N replicas, each **owning** an independent engine —
//!   a [`trident_arch::engine::PhotonicMlp`] (its own laser/thermal
//!   budget, fabrication variation, fault state, and wear trajectory)
//!   or a [`trident_arch::transformer::PhotonicTransformer`] for the
//!   ViT classify path ([`Fleet::try_build_vit`] / [`sim::run_vit`]) —
//!   behind a shard router: replica-parallel or layer-sharded pipeline.
//! * [`sim`] — the event loop: a binary heap of (virtual-time, seq)
//!   events drives arrivals, batch timers, and mid-run fault injection
//!   over **simulated time only** — a `u64` nanosecond clock advanced by
//!   the engines' own latency model.
//! * [`report`] — the machine-readable outcome: p50/p99/p999 latency
//!   from the obs latency histogram, goodput, shed rate, SLO misses,
//!   and per-replica energy/accuracy/wear.
//!
//! ## Determinism contract
//!
//! Everything observable — the latency report, the JSON export, every
//! counter — is a pure function of the [`sim::ServeConfig`]. There is no
//! wall clock anywhere in the data path; tracing on/off and thread count
//! change nothing (`tests/serve_determinism.rs` pins both).

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_lossless))]

pub mod batcher;
pub mod fleet;
pub mod frontend;
pub mod report;
pub mod sim;
pub mod traffic;

pub use fleet::{Fleet, ReplicaProfile, Sharding};
pub use report::{ReplicaReport, ServeReport};
pub use sim::{FaultEvent, ServeConfig};
pub use traffic::ArrivalProcess;

use trident_arch::ArchError;

/// One inference request flowing through the service.
#[derive(Debug, Clone)]
pub struct Request {
    /// Monotone request id (also the arrival order).
    pub id: u64,
    /// Arrival time on the simulated clock, nanoseconds.
    pub arrival_ns: u64,
    /// Absolute SLO deadline, nanoseconds (`arrival_ns + slo_ns`).
    pub deadline_ns: u64,
    /// Input vector (one dataset sample, engine input width).
    pub input: Vec<f64>,
    /// Ground-truth class, for served-accuracy accounting.
    pub label: usize,
}

impl AsRef<[f64]> for Request {
    /// The input vector — lets a `&[Request]` batch feed
    /// `PhotonicMlp::try_forward_batch` directly, with no per-dispatch
    /// slice-of-slices staging allocation.
    fn as_ref(&self) -> &[f64] {
        &self.input
    }
}

/// Typed serving-layer errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// An engine operation failed (construction, deploy, forward).
    Arch(ArchError),
    /// The configuration supplies no dataset samples to serve.
    EmptyDataset,
    /// The configuration supplies no replica profiles.
    NoReplicas,
    /// A dataset sample's width does not match the model input width.
    InputWidthMismatch {
        /// Engine input width (`dims[0]`).
        expected: usize,
        /// Offending sample width.
        got: usize,
    },
    /// Layer-pipeline sharding needs at least one weight layer per stage.
    BadPipeline {
        /// Requested pipeline stages (replica profiles).
        stages: usize,
        /// Weight layers available to shard.
        layers: usize,
    },
    /// A deployment knob the ViT engine does not model was requested on
    /// a ViT fleet (laser droop, pre-aging, receiver noise, pipeline
    /// sharding, fault injection are MLP-engine features).
    VitUnsupported {
        /// The unsupported feature.
        what: &'static str,
    },
    /// A fault event targets a replica index outside the fleet.
    ReplicaOutOfRange {
        /// Offending replica index.
        replica: usize,
        /// Fleet size.
        replicas: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Arch(e) => write!(f, "engine error: {e}"),
            ServeError::EmptyDataset => write!(f, "serve config has an empty dataset"),
            ServeError::NoReplicas => write!(f, "serve config has no replica profiles"),
            ServeError::InputWidthMismatch { expected, got } => {
                write!(f, "dataset sample width {got} != engine input width {expected}")
            }
            ServeError::BadPipeline { stages, layers } => write!(
                f,
                "layer pipeline needs stages <= layers, got {stages} stages for {layers} layers"
            ),
            ServeError::VitUnsupported { what } => {
                write!(f, "ViT fleets do not support {what}")
            }
            ServeError::ReplicaOutOfRange { replica, replicas } => {
                write!(f, "fault event targets replica {replica} of a {replicas}-replica fleet")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ArchError> for ServeError {
    fn from(e: ArchError) -> Self {
        ServeError::Arch(e)
    }
}
