//! The replica fleet and shard router.
//!
//! Every replica **owns** its engine: an independent `PhotonicMlp` with
//! its own fabrication variation, receiver-noise stream, laser-power
//! droop, energy/latency ledgers, fault state, and wear trajectory.
//! Nothing is shared between replicas — the ownership model a real
//! fleet has, where one chip's dead rings or drifted cells cannot touch
//! its neighbours.
//!
//! Two sharding modes route batches through the fleet:
//!
//! * [`Sharding::ReplicaParallel`] — every replica carries the full
//!   network; a batch goes to the replica that frees up earliest
//!   (least-loaded, ties to the lowest id). Throughput scales with N.
//! * [`Sharding::LayerPipeline`] — the network's weight layers are
//!   split contiguously across the replicas; a batch flows through
//!   every stage in order, and stage `s` becomes free as soon as its
//!   part is done, so successive batches overlap across stages.
//!
//! Service time is the engines' own simulated latency: the fleet diffs
//! `total_elapsed()` around each forward call, so serving latency,
//! energy, and accuracy all come from the same device models the paper
//! tables use.

use crate::{Request, ServeError};
use trident_arch::engine::{EngineOptions, PhotonicMlp};
use trident_arch::faults::{FaultPlan, FaultReport};
use trident_arch::transformer::{PhotonicTransformer, TransformerConfig};
use trident_arch::ArchError;
use trident_obs as obs;
use trident_photonics::units::Hours;

/// How the fleet shards the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sharding {
    /// Full model on every replica; batches route to the least-loaded.
    ReplicaParallel,
    /// Contiguous layer ranges across replicas; batches traverse all
    /// stages in order.
    LayerPipeline,
}

impl Sharding {
    /// Stable key for reports.
    pub fn key(self) -> &'static str {
        match self {
            Sharding::ReplicaParallel => "replica_parallel",
            Sharding::LayerPipeline => "layer_pipeline",
        }
    }
}

/// Per-replica deployment identity: what makes chip `i` a *different
/// physical chip* from chip `j` running the same weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaProfile {
    /// Fabrication-variation seed (the chip identity).
    pub variation_seed: u64,
    /// Receiver-noise seed (`None` = ideal detectors).
    pub noise_seed: Option<u64>,
    /// Fractional pump-laser power droop for this replica's budget,
    /// `[0, 1)` — applied at deployment as a laser-only fault plan.
    pub laser_droop: f64,
    /// Hours of PCM wear already on this chip's clock at deployment
    /// (only observable when the statistical device model is enabled).
    pub pre_age_hours: f64,
}

impl Default for ReplicaProfile {
    fn default() -> Self {
        Self { variation_seed: 0, noise_seed: None, laser_droop: 0.0, pre_age_hours: 0.0 }
    }
}

impl ReplicaProfile {
    /// A healthy chip with the given identity seed.
    pub fn with_seed(variation_seed: u64) -> Self {
        Self { variation_seed, ..Self::default() }
    }
}

/// One request's completion as seen by the router.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// Index of the request inside the dispatched batch.
    pub batch_slot: usize,
    /// Virtual completion time, ns.
    pub done_ns: u64,
    /// Predicted class.
    pub predicted: usize,
    /// Replica that produced the prediction (pipeline: the tail stage).
    pub replica: usize,
}

/// The engine a replica owns: the paper's dense MLP engine, or a
/// [`PhotonicTransformer`] serving the ViT classify path. The enum
/// forwards exactly the call set the dispatch path uses, so the event
/// loop, batcher, and report never care which fabric is underneath.
pub enum ReplicaEngine {
    /// Dense photonic MLP (the original serving target). Boxed so the
    /// enum stays pointer-sized regardless of engine footprint.
    Mlp(Box<PhotonicMlp>),
    /// ViT-style photonic transformer (classify forward only).
    Vit {
        /// The transformer engine.
        tx: Box<PhotonicTransformer>,
        /// Pseudo layer widths (`[input, d_model, out_dim]`) so fleet
        /// scratch sizing keeps working unchanged.
        dims: Vec<usize>,
    },
}

impl ReplicaEngine {
    fn try_forward_batch(
        &mut self,
        batch: &[impl AsRef<[f64]>],
        tail: bool,
    ) -> Result<&[Vec<f64>], ArchError> {
        match self {
            ReplicaEngine::Mlp(e) => e.try_forward_batch(batch, tail),
            ReplicaEngine::Vit { tx, .. } => tx.try_forward_batch(batch),
        }
    }

    fn total_elapsed_ns(&self) -> f64 {
        match self {
            ReplicaEngine::Mlp(e) => e.total_elapsed().value(),
            ReplicaEngine::Vit { tx, .. } => tx.total_elapsed().value(),
        }
    }

    fn total_energy_pj(&self) -> f64 {
        match self {
            ReplicaEngine::Mlp(e) => e.total_energy().value(),
            ReplicaEngine::Vit { tx, .. } => tx.total_energy().value(),
        }
    }

    fn reserve_forward_scratch(&mut self, batch: usize) {
        match self {
            ReplicaEngine::Mlp(e) => e.reserve_forward_scratch(batch),
            // The transformer forward stages its own per-token buffers;
            // there is no pre-sizable scratch, and correspondingly no
            // zero-alloc steady-state claim for ViT fleets (the MLP
            // engine's `hot_path_allocs` contract stays MLP-only).
            ReplicaEngine::Vit { .. } => {}
        }
    }

    fn hot_path_allocs(&self) -> u64 {
        match self {
            ReplicaEngine::Mlp(e) => e.hot_path_allocs(),
            ReplicaEngine::Vit { .. } => 0,
        }
    }

    fn dims(&self) -> &[usize] {
        match self {
            ReplicaEngine::Mlp(e) => e.dims(),
            ReplicaEngine::Vit { dims, .. } => dims,
        }
    }

    fn masked_rings(&self) -> u64 {
        match self {
            ReplicaEngine::Mlp(e) => e.masked_rings() as u64,
            ReplicaEngine::Vit { .. } => 0,
        }
    }

    fn remapped_rings(&self) -> u64 {
        match self {
            ReplicaEngine::Mlp(e) => e.remapped_rings(),
            ReplicaEngine::Vit { .. } => 0,
        }
    }

    fn write_failures(&self) -> u64 {
        match self {
            ReplicaEngine::Mlp(e) => e.write_failures(),
            ReplicaEngine::Vit { .. } => 0,
        }
    }
}

/// A replica (or pipeline stage): one owned engine plus its serving
/// ledgers.
struct Replica {
    engine: ReplicaEngine,
    /// Pipeline only: apply the identity tail on the last layer?
    tail: bool,
    /// Virtual time this replica is busy until.
    free_at_ns: u64,
    /// Engine energy already spent before serving began, pJ.
    energy_baseline_pj: f64,
    requests: u64,
    batches: u64,
    correct: u64,
    busy_ns: u64,
}

/// NaN-safe argmax over logits (total order, empty → class 0).
fn argmax(logits: &[f64]) -> usize {
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// End-of-run wear/energy/accuracy numbers for one replica.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaLedger {
    /// Replica (or stage) index.
    pub id: usize,
    /// Requests this replica served (pipeline: every stage sees all).
    pub requests: u64,
    /// Batches this replica served.
    pub batches: u64,
    /// Correct predictions among served requests (tail replicas only).
    pub correct: u64,
    /// Virtual time spent forwarding, ns.
    pub busy_ns: u64,
    /// Energy spent serving (total minus deployment baseline), pJ.
    pub energy_pj: f64,
    /// Rings masked off the bus by fault handling.
    pub masked_rings: u64,
    /// Cells remapped onto spare rings.
    pub remapped_rings: u64,
    /// Closed-loop writes that exhausted their retry budget.
    pub write_failures: u64,
}

/// The fleet: N owned replicas behind a shard router, plus the global
/// service-time estimator admission control consults.
pub struct Fleet {
    sharding: Sharding,
    replicas: Vec<Replica>,
    /// EWMA of observed per-request service time, integer ns — the
    /// admission-control estimate. Updated `est = (3·est + actual) / 4`
    /// after every dispatch, so it is deterministic integer arithmetic.
    est_ns_per_item: u64,
    /// Reused per-dispatch prediction buffer.
    pred_scratch: Vec<usize>,
    /// Reused per-sample activation buffers the pipeline stages hand off
    /// through (replica-parallel dispatch never touches them).
    stage_io: Vec<Vec<f64>>,
    /// Fleet-side heap-growth events on the dispatch path (the engines
    /// keep their own counters; [`Fleet::hot_path_allocs`] sums both).
    local_allocs: u64,
}

impl Fleet {
    /// Build a fleet: one engine per profile, pretrained weights
    /// deployed onto every chip, per-replica droop and pre-age applied.
    ///
    /// `base` supplies the shared architecture knobs (bank geometry,
    /// weight bits, statistical model); each profile overrides the
    /// identity seeds. With [`Sharding::LayerPipeline`], profile `s`
    /// becomes pipeline stage `s` and owns a contiguous slice of the
    /// weight layers (requires `profiles.len() <= layer count`).
    pub fn try_build(
        dims: &[usize],
        base: EngineOptions,
        profiles: &[ReplicaProfile],
        pretrained: Option<&[Vec<f64>]>,
        sharding: Sharding,
        est_ns_per_item_init: u64,
    ) -> Result<Self, ServeError> {
        if profiles.is_empty() {
            return Err(ServeError::NoReplicas);
        }
        let layers = dims.len() - 1;
        if sharding == Sharding::LayerPipeline && profiles.len() > layers {
            return Err(ServeError::BadPipeline { stages: profiles.len(), layers });
        }
        let mut replicas = Vec::with_capacity(profiles.len());
        for (id, profile) in profiles.iter().enumerate() {
            let opts = EngineOptions {
                variation_seed: profile.variation_seed,
                noise_seed: profile.noise_seed,
                ..base
            };
            // Pipeline stage s owns layers [s·L/S, (s+1)·L/S): contiguous,
            // non-empty (S <= L), covering all layers exactly once.
            let (stage_dims, layer_lo, tail) = match sharding {
                Sharding::ReplicaParallel => (dims.to_vec(), 0, true),
                Sharding::LayerPipeline => {
                    let lo = id * layers / profiles.len();
                    let hi = (id + 1) * layers / profiles.len();
                    (dims[lo..=hi].to_vec(), lo, id + 1 == profiles.len())
                }
            };
            let mut engine = PhotonicMlp::try_with_options(&stage_dims, opts)?;
            if let Some(weights) = pretrained {
                let stage_weights = &weights[layer_lo..layer_lo + engine.layer_count()];
                engine.try_deploy_weights(stage_weights)?;
            }
            if profile.laser_droop > 0.0 {
                // Laser-only fault plan: models this replica's reduced
                // optical power budget without injecting cell faults.
                engine.inject_faults(&FaultPlan {
                    stuck_amorphous: 0.0,
                    stuck_crystalline: 0.0,
                    dead_rings: 0.0,
                    drift_years: 0.0,
                    laser_droop: profile.laser_droop,
                    seed: profile.variation_seed,
                });
            }
            if profile.pre_age_hours > 0.0 {
                engine.advance_deployment(Hours(profile.pre_age_hours));
                engine.calibrate_drift_compensation();
            }
            let energy_baseline_pj = engine.total_energy().value();
            replicas.push(Replica {
                engine: ReplicaEngine::Mlp(Box::new(engine)),
                tail,
                free_at_ns: 0,
                energy_baseline_pj,
                requests: 0,
                batches: 0,
                correct: 0,
                busy_ns: 0,
            });
        }
        Ok(Self {
            sharding,
            replicas,
            est_ns_per_item: est_ns_per_item_init.max(1),
            pred_scratch: Vec::new(),
            stage_io: Vec::new(),
            local_allocs: 0,
        })
    }

    /// Build a ViT fleet: one [`PhotonicTransformer`] per profile, all
    /// programmed from the same `vit` configuration (same weights on
    /// every chip, like a deployed model). Replica-parallel only — a
    /// transformer block is not layer-shardable the way a dense stack
    /// is — and the MLP-only deployment knobs (laser droop, pre-age,
    /// receiver noise) are rejected with a typed error rather than
    /// silently ignored.
    pub fn try_build_vit(
        vit: &TransformerConfig,
        profiles: &[ReplicaProfile],
        sharding: Sharding,
        est_ns_per_item_init: u64,
    ) -> Result<Self, ServeError> {
        if profiles.is_empty() {
            return Err(ServeError::NoReplicas);
        }
        if sharding != Sharding::ReplicaParallel {
            return Err(ServeError::VitUnsupported { what: "layer-pipeline sharding" });
        }
        let mut replicas = Vec::with_capacity(profiles.len());
        for profile in profiles {
            if profile.laser_droop > 0.0 {
                return Err(ServeError::VitUnsupported { what: "laser droop" });
            }
            if profile.pre_age_hours > 0.0 {
                return Err(ServeError::VitUnsupported { what: "pre-aging" });
            }
            if profile.noise_seed.is_some() {
                return Err(ServeError::VitUnsupported { what: "receiver noise" });
            }
            let tx = Box::new(PhotonicTransformer::try_new(vit.clone())?);
            let dims = vec![vit.input_width(), vit.d_model, vit.out_dim];
            let energy_baseline_pj = tx.total_energy().value();
            replicas.push(Replica {
                engine: ReplicaEngine::Vit { tx, dims },
                tail: true,
                free_at_ns: 0,
                energy_baseline_pj,
                requests: 0,
                batches: 0,
                correct: 0,
                busy_ns: 0,
            });
        }
        Ok(Self {
            sharding,
            replicas,
            est_ns_per_item: est_ns_per_item_init.max(1),
            pred_scratch: Vec::new(),
            stage_io: Vec::new(),
            local_allocs: 0,
        })
    }

    /// Pre-size every replica's engine scratch plus the fleet's own
    /// dispatch buffers for batches up to `batch` requests. Called once
    /// at fleet build time (the event loop calls it right after
    /// [`Fleet::try_build`]); growth here is warm-up, not counted in
    /// [`Fleet::hot_path_allocs`].
    pub fn reserve_scratch(&mut self, batch: usize) {
        for r in &mut self.replicas {
            r.engine.reserve_forward_scratch(batch);
        }
        let wmax = self
            .replicas
            .iter()
            .flat_map(|r| r.engine.dims().iter().copied())
            .max()
            .unwrap_or(0);
        while self.stage_io.len() < batch {
            self.stage_io.push(Vec::new());
        }
        for slot in &mut self.stage_io {
            if slot.capacity() < wmax {
                slot.reserve(wmax - slot.len());
            }
        }
        if self.pred_scratch.capacity() < batch {
            let need = batch - self.pred_scratch.len();
            self.pred_scratch.reserve(need);
        }
    }

    /// Heap-growth events on the dispatch hot path since construction:
    /// the fleet's own staging buffers plus every replica engine's
    /// forward scratch. Zero growth across a window of warm dispatches
    /// is the zero-allocation claim `ablation_serve` reports.
    pub fn hot_path_allocs(&self) -> u64 {
        self.local_allocs
            + self.replicas.iter().map(|r| r.engine.hot_path_allocs()).sum::<u64>()
    }

    /// Number of replicas (pipeline: stages).
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the fleet is empty (it never is after `try_build`).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The sharding mode this fleet routes with.
    pub fn sharding(&self) -> Sharding {
        self.sharding
    }

    /// Earliest virtual time any route through the fleet can start new
    /// work: replica-parallel → the least-loaded replica frees up;
    /// pipeline → the head stage frees up.
    pub fn earliest_free_ns(&self) -> u64 {
        match self.sharding {
            Sharding::ReplicaParallel => {
                self.replicas.iter().map(|r| r.free_at_ns).min().unwrap_or(0)
            }
            Sharding::LayerPipeline => {
                self.replicas.first().map(|r| r.free_at_ns).unwrap_or(0)
            }
        }
    }

    /// Admission-control estimate of serving `items` requests, ns.
    pub fn est_batch_ns(&self, items: u64) -> u64 {
        self.est_ns_per_item.saturating_mul(items)
    }

    /// Route one closed batch through the fleet at virtual time
    /// `now_ns`. Returns per-request completions; replica ledgers and
    /// the admission estimator update as a side effect.
    ///
    /// Allocating wrapper over [`Fleet::dispatch_into`]; the event loop
    /// uses the `_into` form with a reused completion buffer.
    pub fn dispatch(
        &mut self,
        now_ns: u64,
        batch: &[Request],
    ) -> Result<Vec<Completion>, ServeError> {
        let mut completions = Vec::new();
        self.dispatch_into(now_ns, batch, &mut completions)?;
        Ok(completions)
    }

    /// Route one closed batch through the fleet, writing per-request
    /// completions into a caller-owned buffer (cleared first). Each
    /// engine forward goes through its batched zero-alloc path, so a
    /// warm fleet with a warm `completions` buffer dispatches an entire
    /// batch without heap allocation.
    pub fn dispatch_into(
        &mut self,
        now_ns: u64,
        batch: &[Request],
        completions: &mut Vec<Completion>,
    ) -> Result<(), ServeError> {
        completions.clear();
        if batch.is_empty() {
            return Ok(());
        }
        let _span = obs::span("serve.dispatch");
        let n = batch.len();
        let (done_ns, tail_id, total_service) = match self.sharding {
            Sharding::ReplicaParallel => {
                // Least-loaded routing, ties to the lowest id — a pure
                // function of the ledger state, so fully deterministic.
                let pick = self
                    .replicas
                    .iter()
                    .enumerate()
                    .min_by_key(|(id, r)| (r.free_at_ns, *id))
                    .map(|(id, _)| id)
                    .unwrap_or(0);
                let mut preds = std::mem::take(&mut self.pred_scratch);
                let had_preds = preds.capacity();
                preds.clear();
                let replica = &mut self.replicas[pick];
                let start = now_ns.max(replica.free_at_ns);
                let elapsed_before = replica.engine.total_elapsed_ns();
                let outputs = replica.engine.try_forward_batch(batch, replica.tail)?;
                preds.extend(outputs.iter().map(|o| argmax(o)));
                let service = obs::counter::ns_from_ns_f64(
                    replica.engine.total_elapsed_ns() - elapsed_before,
                )
                .max(1);
                let done = start.saturating_add(service);
                replica.free_at_ns = done;
                replica.busy_ns += service;
                replica.batches += 1;
                replica.requests += n as u64;
                if preds.capacity() > had_preds {
                    self.local_allocs += 1;
                }
                self.pred_scratch = preds;
                (done, pick, service)
            }
            Sharding::LayerPipeline => {
                // The batch flows through every stage; stage s frees at
                // its own completion, so the next batch can enter stage
                // s while this one is in stage s+1. Stage outputs hand
                // off through the fleet's reused `stage_io` buffers.
                while self.stage_io.len() < n {
                    self.stage_io.push(Vec::new());
                    self.local_allocs += 1;
                }
                let mut t = now_ns;
                let mut total_service = 0u64;
                let last = self.replicas.len() - 1;
                for s in 0..self.replicas.len() {
                    let stage = &mut self.replicas[s];
                    let start = t.max(stage.free_at_ns);
                    let elapsed_before = stage.engine.total_elapsed_ns();
                    let outputs = if s == 0 {
                        stage.engine.try_forward_batch(batch, stage.tail)?
                    } else {
                        stage.engine.try_forward_batch(&self.stage_io[..n], stage.tail)?
                    };
                    let mut grew = 0u64;
                    for (slot, out) in self.stage_io.iter_mut().take(n).zip(outputs) {
                        let had = slot.capacity();
                        slot.clear();
                        slot.extend_from_slice(out);
                        if slot.capacity() > had {
                            grew += 1;
                        }
                    }
                    let service = obs::counter::ns_from_ns_f64(
                        stage.engine.total_elapsed_ns() - elapsed_before,
                    )
                    .max(1);
                    t = start.saturating_add(service);
                    stage.free_at_ns = t;
                    stage.busy_ns += service;
                    stage.batches += 1;
                    stage.requests += n as u64;
                    total_service = total_service.saturating_add(service);
                    self.local_allocs += grew;
                }
                let mut preds = std::mem::take(&mut self.pred_scratch);
                let had_preds = preds.capacity();
                preds.clear();
                preds.extend(self.stage_io.iter().take(n).map(|o| argmax(o)));
                if preds.capacity() > had_preds {
                    self.local_allocs += 1;
                }
                self.pred_scratch = preds;
                (t, last, total_service)
            }
        };
        // Integer EWMA of per-request service time feeds admission
        // control; deterministic by construction.
        let actual_per_item = (total_service / n as u64).max(1);
        self.est_ns_per_item = (3 * self.est_ns_per_item + actual_per_item) / 4;

        let had_completions = completions.capacity();
        for (slot, (req, &predicted)) in batch.iter().zip(&self.pred_scratch).enumerate() {
            if predicted == req.label {
                self.replicas[tail_id].correct += 1;
            }
            completions.push(Completion {
                batch_slot: slot,
                done_ns,
                predicted,
                replica: tail_id,
            });
        }
        if completions.capacity() > had_completions {
            self.local_allocs += 1;
        }
        Ok(())
    }

    /// Inject a fault plan into one replica mid-run (the graceful-
    /// degradation scenario). Returns what was actually injected.
    pub fn inject_fault(
        &mut self,
        replica: usize,
        plan: &FaultPlan,
    ) -> Result<FaultReport, ServeError> {
        let replicas = self.replicas.len();
        let target = self
            .replicas
            .get_mut(replica)
            .ok_or(ServeError::ReplicaOutOfRange { replica, replicas })?;
        match &mut target.engine {
            ReplicaEngine::Mlp(e) => Ok(e.inject_faults(plan)),
            ReplicaEngine::Vit { .. } => {
                Err(ServeError::VitUnsupported { what: "fault injection" })
            }
        }
    }

    /// End-of-run ledgers, one per replica, in id order.
    pub fn ledgers(&self) -> Vec<ReplicaLedger> {
        self.replicas
            .iter()
            .enumerate()
            .map(|(id, r)| ReplicaLedger {
                id,
                requests: r.requests,
                batches: r.batches,
                correct: r.correct,
                busy_ns: r.busy_ns,
                energy_pj: r.engine.total_energy_pj() - r.energy_baseline_pj,
                masked_rings: r.engine.masked_rings(),
                remapped_rings: r.engine.remapped_rings(),
                write_failures: r.engine.write_failures(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_requests(n: usize, width: usize) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                id: i as u64,
                arrival_ns: i as u64 * 100,
                deadline_ns: u64::MAX,
                input: vec![0.5; width],
                label: i % 4,
            })
            .collect()
    }

    #[test]
    fn replica_parallel_routes_to_least_loaded() {
        let dims = [8, 6, 4];
        let profiles = [ReplicaProfile::with_seed(1), ReplicaProfile::with_seed(2)];
        let mut fleet = Fleet::try_build(
            &dims,
            EngineOptions::default(),
            &profiles,
            None,
            Sharding::ReplicaParallel,
            1000,
        )
        .unwrap();
        let reqs = tiny_requests(2, 8);
        let c1 = fleet.dispatch(0, &reqs).unwrap();
        let c2 = fleet.dispatch(0, &reqs).unwrap();
        // Second batch must land on the other (still-idle) replica.
        assert_ne!(c1[0].replica, c2[0].replica);
        let ledgers = fleet.ledgers();
        assert_eq!(ledgers[0].batches, 1);
        assert_eq!(ledgers[1].batches, 1);
        assert!(ledgers[0].energy_pj > 0.0, "serving must charge energy");
    }

    #[test]
    fn pipeline_matches_monolithic_predictions() {
        let dims = [8, 6, 4];
        // Pretrain nothing: both fleets carry identical Xavier weights
        // (same seed), so stage-split and monolithic forwards must
        // agree on every prediction.
        let mono_profile = [ReplicaProfile::with_seed(0)];
        let mut mono = Fleet::try_build(
            &dims,
            EngineOptions::default(),
            &mono_profile,
            None,
            Sharding::ReplicaParallel,
            1000,
        )
        .unwrap();
        let stage_profiles = [ReplicaProfile::with_seed(0), ReplicaProfile::with_seed(0)];
        let mut pipe = Fleet::try_build(
            &dims,
            EngineOptions::default(),
            &stage_profiles,
            None,
            Sharding::LayerPipeline,
            1000,
        )
        .unwrap();
        let reqs = tiny_requests(3, 8);
        let a = mono.dispatch(0, &reqs).unwrap();
        let b = pipe.dispatch(0, &reqs).unwrap();
        let pa: Vec<usize> = a.iter().map(|c| c.predicted).collect();
        let pb: Vec<usize> = b.iter().map(|c| c.predicted).collect();
        assert_eq!(pa, pb, "pipeline must compute the same function as the monolith");
    }

    #[test]
    fn pipeline_rejects_more_stages_than_layers() {
        let dims = [8, 4];
        let profiles = [ReplicaProfile::with_seed(0), ReplicaProfile::with_seed(1)];
        assert!(matches!(
            Fleet::try_build(
                &dims,
                EngineOptions::default(),
                &profiles,
                None,
                Sharding::LayerPipeline,
                1000,
            ),
            Err(ServeError::BadPipeline { stages: 2, layers: 1 })
        ));
    }

    #[test]
    fn fault_injection_targets_one_replica() {
        let dims = [8, 6, 4];
        let profiles = [ReplicaProfile::with_seed(1), ReplicaProfile::with_seed(2)];
        let mut fleet = Fleet::try_build(
            &dims,
            EngineOptions::default(),
            &profiles,
            None,
            Sharding::ReplicaParallel,
            1000,
        )
        .unwrap();
        let plan = FaultPlan {
            stuck_amorphous: 0.0,
            stuck_crystalline: 0.0,
            dead_rings: 0.5,
            drift_years: 0.0,
            laser_droop: 0.0,
            seed: 3,
        };
        let report = fleet.inject_fault(1, &plan).unwrap();
        assert!(report.dead_rings > 0, "a 50% dead-ring plan must kill rings");
        let ledgers = fleet.ledgers();
        assert_eq!(ledgers[0].masked_rings, 0);
        assert!(fleet.inject_fault(9, &plan).is_err());
    }
}
