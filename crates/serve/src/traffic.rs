//! Deterministic open-loop traffic generation.
//!
//! Arrivals are **counter-addressed**, the same discipline as the PCM
//! statistical model's `seeded_gaussian`: the n-th draw of a stream is a
//! pure function of `(seed, stream, n)` through a stateless bit mixer,
//! so the full arrival schedule is reproducible bit-for-bit from the
//! config alone — no RNG state threads through the simulation, no wall
//! clock, no dependence on thread schedule. Times are `u64` virtual
//! nanoseconds and strictly monotone (every interarrival is ≥ 1 ns).

// This module's stream ids live in the workspace stream registry
// (`trident-streams`, domain `serve.traffic`), alongside the shared
// mixer and splitmix finalizer.
use trident_streams::{seeded_u64, STREAM_TRAFFIC_ARRIVAL, STREAM_TRAFFIC_ONOFF};

/// The open-loop arrival process driving the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential interarrivals with the given
    /// mean — the classic open-loop load model.
    Poisson {
        /// Mean interarrival gap, nanoseconds.
        mean_interarrival_ns: u64,
    },
    /// Bursty ON-OFF (interrupted Poisson) arrivals: exponential ON
    /// windows of dense Poisson traffic separated by exponential OFF
    /// gaps with no arrivals — the tail-latency stress case.
    Bursty {
        /// Mean ON-window length, nanoseconds.
        on_mean_ns: u64,
        /// Mean OFF-gap length, nanoseconds.
        off_mean_ns: u64,
        /// Mean interarrival gap *within* an ON window, nanoseconds.
        on_interarrival_ns: u64,
    },
}

/// Map a raw draw to the open unit interval `(0, 1]` (53-bit mantissa;
/// never exactly zero, so `ln` is always finite).
fn unit_open(raw: u64) -> f64 {
    ((raw >> 11) + 1) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// Exponential variate with the given mean, floored at 1 ns so virtual
/// time is strictly monotone.
fn exp_ns(mean_ns: u64, raw: u64) -> u64 {
    let gap = -(unit_open(raw).ln()) * (mean_ns as f64);
    let rounded = if gap.is_finite() && gap > 0.0 { gap.round() } else { 0.0 };
    if rounded >= 1.8446744073709552e19 {
        u64::MAX
    } else {
        (rounded as u64).max(1)
    }
}

/// Generate `count` strictly-monotone arrival times on the virtual
/// clock. Pure function of `(process, seed, count)`.
pub fn generate_arrivals(process: ArrivalProcess, seed: u64, count: usize) -> Vec<u64> {
    let mut times = Vec::with_capacity(count);
    match process {
        ArrivalProcess::Poisson { mean_interarrival_ns } => {
            let mut t = 0u64;
            for i in 0..count {
                t = t.saturating_add(exp_ns(
                    mean_interarrival_ns,
                    seeded_u64(seed, STREAM_TRAFFIC_ARRIVAL, i as u64),
                ));
                times.push(t);
            }
        }
        ArrivalProcess::Bursty { on_mean_ns, off_mean_ns, on_interarrival_ns } => {
            let mut t = 0u64;
            let mut onoff_draw = 0u64;
            let mut window_end =
                exp_ns(on_mean_ns, seeded_u64(seed, STREAM_TRAFFIC_ONOFF, onoff_draw));
            onoff_draw += 1;
            for i in 0..count {
                t = t.saturating_add(exp_ns(
                    on_interarrival_ns,
                    seeded_u64(seed, STREAM_TRAFFIC_ARRIVAL, i as u64),
                ));
                // Crossed out of the ON window: insert an OFF gap, then
                // open the next ON window at the shifted time.
                while t >= window_end {
                    let off = exp_ns(off_mean_ns, seeded_u64(seed, STREAM_TRAFFIC_ONOFF, onoff_draw));
                    onoff_draw += 1;
                    let on = exp_ns(on_mean_ns, seeded_u64(seed, STREAM_TRAFFIC_ONOFF, onoff_draw));
                    onoff_draw += 1;
                    t = t.saturating_add(off);
                    window_end = t.saturating_add(on);
                }
                times.push(t);
            }
        }
    }
    times
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_arrivals_are_monotone_and_reproducible() {
        let p = ArrivalProcess::Poisson { mean_interarrival_ns: 10_000 };
        let a = generate_arrivals(p, 42, 500);
        let b = generate_arrivals(p, 42, 500);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "arrivals must be strictly monotone");
        // Mean interarrival within 3x of nominal (loose sanity bound).
        let span = a[a.len() - 1] - a[0];
        let mean = span / (a.len() as u64 - 1);
        assert!((3_000..=30_000).contains(&mean), "poisson mean gap {mean}");
    }

    #[test]
    fn different_seeds_differ() {
        let p = ArrivalProcess::Poisson { mean_interarrival_ns: 10_000 };
        assert_ne!(generate_arrivals(p, 1, 100), generate_arrivals(p, 2, 100));
    }

    #[test]
    fn bursty_arrivals_have_heavier_gap_tail_than_poisson() {
        let bursty = ArrivalProcess::Bursty {
            on_mean_ns: 50_000,
            off_mean_ns: 200_000,
            on_interarrival_ns: 2_000,
        };
        let a = generate_arrivals(bursty, 7, 1000);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        // The ON-OFF process must actually produce OFF gaps: some
        // interarrival far above the within-burst mean.
        let max_gap = a.windows(2).map(|w| w[1] - w[0]).max().unwrap();
        assert!(max_gap > 20_000, "no OFF gap observed (max gap {max_gap})");
    }

    #[test]
    fn seeded_u64_is_a_pure_function_of_the_address() {
        assert_eq!(seeded_u64(9, 1, 5), seeded_u64(9, 1, 5));
        assert_ne!(seeded_u64(9, 1, 5), seeded_u64(9, 1, 6));
        assert_ne!(seeded_u64(9, 1, 5), seeded_u64(9, 2, 5));
    }
}
