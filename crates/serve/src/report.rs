//! The machine-readable serving report.
//!
//! Every field is either an integer on the virtual clock or a derived
//! float computed by one fixed expression, and the JSON export is
//! hand-rolled with fixed field order and fixed precision — so a report
//! (and its serialized form) is byte-identical whenever the config is,
//! at any thread count, with tracing on or off.

pub use crate::fleet::ReplicaLedger as ReplicaReport;
use trident_obs::hist::HistSnapshot;

/// The outcome of one serving scenario.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Scenario label from the config.
    pub scenario: String,
    /// Master seed the run used.
    pub seed: u64,
    /// Sharding mode key (`replica_parallel` / `layer_pipeline`).
    pub sharding: &'static str,
    /// Requests offered by the traffic generator.
    pub offered: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Served requests that met their SLO deadline.
    pub on_time: u64,
    /// Served requests that completed past their deadline.
    pub slo_misses: u64,
    /// Served requests predicted correctly.
    pub served_correct: u64,
    /// Mid-run fault events applied.
    pub faults_applied: u64,
    /// The per-request SLO the run was configured with, ns.
    pub slo_ns: u64,
    /// Median served latency (bucket upper bound), ns.
    pub p50_ns: u64,
    /// 99th-percentile served latency (bucket upper bound), ns.
    pub p99_ns: u64,
    /// 99.9th-percentile served latency (bucket upper bound), ns.
    pub p999_ns: u64,
    /// Highest non-empty latency bucket's upper bound, ns.
    pub max_ns: u64,
    /// Virtual time from first arrival to last completion, ns.
    pub horizon_ns: u64,
    /// Hot-path heap allocations after the first (warm-up) dispatch —
    /// the zero-alloc steady-state claim is that this is 0. Diagnostic
    /// only: **not** rendered in [`ServeReport::to_json`], so the JSON
    /// export stays byte-identical to earlier versions.
    pub steady_state_allocs: u64,
    /// Per-replica ledgers, id order.
    pub replicas: Vec<ReplicaReport>,
    /// The merged fleet-wide latency histogram.
    pub latency: HistSnapshot,
}

impl ServeReport {
    /// On-time completions per second of virtual time — the goodput.
    pub fn goodput_rps(&self) -> f64 {
        if self.horizon_ns == 0 {
            return 0.0;
        }
        self.on_time as f64 * 1e9 / self.horizon_ns as f64
    }

    /// Fraction of offered requests shed by admission control.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.shed as f64 / self.offered as f64
    }

    /// Accuracy over served requests.
    pub fn served_accuracy(&self) -> f64 {
        if self.served == 0 {
            return 0.0;
        }
        self.served_correct as f64 / self.served as f64
    }

    /// Stable JSON export: fixed field order, fixed float precision.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("  \"scenario\": \"{}\",\n", escape(&self.scenario)));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"sharding\": \"{}\",\n", self.sharding));
        s.push_str(&format!("  \"offered\": {},\n", self.offered));
        s.push_str(&format!("  \"shed\": {},\n", self.shed));
        s.push_str(&format!("  \"served\": {},\n", self.served));
        s.push_str(&format!("  \"on_time\": {},\n", self.on_time));
        s.push_str(&format!("  \"slo_misses\": {},\n", self.slo_misses));
        s.push_str(&format!("  \"faults_applied\": {},\n", self.faults_applied));
        s.push_str(&format!("  \"slo_ns\": {},\n", self.slo_ns));
        s.push_str(&format!("  \"p50_ns\": {},\n", self.p50_ns));
        s.push_str(&format!("  \"p99_ns\": {},\n", self.p99_ns));
        s.push_str(&format!("  \"p999_ns\": {},\n", self.p999_ns));
        s.push_str(&format!("  \"max_ns\": {},\n", self.max_ns));
        s.push_str(&format!("  \"horizon_ns\": {},\n", self.horizon_ns));
        s.push_str(&format!("  \"goodput_rps\": {:.3},\n", self.goodput_rps()));
        s.push_str(&format!("  \"shed_rate\": {:.4},\n", self.shed_rate()));
        s.push_str(&format!("  \"served_accuracy\": {:.4},\n", self.served_accuracy()));
        s.push_str("  \"replicas\": [\n");
        for (i, r) in self.replicas.iter().enumerate() {
            let comma = if i + 1 == self.replicas.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"id\": {}, \"requests\": {}, \"batches\": {}, \"correct\": {}, \
                 \"busy_ns\": {}, \"energy_pj\": {:.1}, \"masked_rings\": {}, \
                 \"remapped_rings\": {}, \"write_failures\": {}}}{}\n",
                r.id,
                r.requests,
                r.batches,
                r.correct,
                r.busy_ns,
                r.energy_pj,
                r.masked_rings,
                r.remapped_rings,
                r.write_failures,
                comma,
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Minimal JSON string escaping (labels are plain ASCII in practice).
fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> ServeReport {
        ServeReport {
            scenario: "test".to_string(),
            seed: 1,
            sharding: "replica_parallel",
            offered: 10,
            shed: 2,
            served: 8,
            on_time: 7,
            slo_misses: 1,
            served_correct: 6,
            faults_applied: 0,
            slo_ns: 1_000_000,
            p50_ns: 100,
            p99_ns: 200,
            p999_ns: 300,
            max_ns: 300,
            horizon_ns: 1_000_000_000,
            steady_state_allocs: 0,
            replicas: vec![ReplicaReport {
                id: 0,
                requests: 8,
                batches: 3,
                correct: 6,
                busy_ns: 500,
                energy_pj: 12.5,
                masked_rings: 0,
                remapped_rings: 0,
                write_failures: 0,
            }],
            latency: HistSnapshot::zero(),
        }
    }

    #[test]
    fn derived_rates_follow_the_ledger() {
        let r = tiny_report();
        assert_eq!(r.goodput_rps(), 7.0);
        assert_eq!(r.shed_rate(), 0.2);
        assert_eq!(r.served_accuracy(), 0.75);
    }

    #[test]
    fn json_is_stable_and_carries_the_headline_numbers() {
        let r = tiny_report();
        let a = r.to_json();
        assert_eq!(a, r.to_json(), "export must be deterministic");
        for needle in
            ["\"p99_ns\": 200", "\"goodput_rps\": 7.000", "\"shed_rate\": 0.2000", "\"id\": 0"]
        {
            assert!(a.contains(needle), "missing {needle} in:\n{a}");
        }
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
