//! The serving event loop: a discrete-event simulation over virtual
//! `u64` nanoseconds.
//!
//! Events — request arrivals, batch linger timers, mid-run fault
//! injections — live in a binary heap keyed `(time, seq)`, where `seq`
//! is a global issue counter: equal-time events process in issue order,
//! so the whole run is one deterministic sequence no matter how the
//! events interleave on the virtual clock. All engine work happens
//! inside the single-threaded loop at batch-dispatch time, so float
//! accumulation order is fixed and the report is bitwise reproducible
//! at any `TRIDENT_THREADS` (the front-end's parallel preparation is
//! order-reconstructed before the loop starts).

use crate::batcher::{BatchPolicy, Batcher, Enqueue};
use crate::fleet::{Fleet, ReplicaProfile, Sharding};
use crate::report::ServeReport;
use crate::traffic::{self, ArrivalProcess};
use crate::{frontend, ServeError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use trident_arch::engine::EngineOptions;
use trident_arch::faults::FaultPlan;
use trident_obs as obs;
use trident_obs::hist::LatencyHistogram;

/// A fault plan scheduled against one replica at a virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault strikes, virtual ns.
    pub at_ns: u64,
    /// Which replica (pipeline: which stage) it strikes.
    pub replica: usize,
    /// What breaks.
    pub plan: FaultPlan,
}

/// Everything a serving run depends on. The report is a pure function
/// of this struct.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Scenario label carried into the report.
    pub scenario: String,
    /// Master seed: traffic, sample selection.
    pub seed: u64,
    /// Network layer widths (input first).
    pub dims: Vec<usize>,
    /// Shared engine architecture knobs; per-replica identity seeds come
    /// from the profiles.
    pub engine: EngineOptions,
    /// Pretrained weights to deploy on every replica (`None` = serve the
    /// Xavier init — fine for latency studies, useless for accuracy).
    pub pretrained: Option<Vec<Vec<f64>>>,
    /// Sample pool requests draw from: `(input, label)` pairs.
    pub dataset: Vec<(Vec<f64>, usize)>,
    /// One profile per replica (pipeline: per stage).
    pub replicas: Vec<ReplicaProfile>,
    /// How the fleet shards the model.
    pub sharding: Sharding,
    /// Batch-close size trigger.
    pub batch_max: usize,
    /// Batch-close linger timeout, ns.
    pub linger_ns: u64,
    /// Per-request SLO, ns after arrival.
    pub slo_ns: u64,
    /// Initial admission-control estimate of per-request service, ns.
    pub est_ns_per_item_init: u64,
    /// Open-loop arrival process.
    pub arrivals: ArrivalProcess,
    /// Number of requests to offer.
    pub requests: usize,
    /// Faults to inject mid-run.
    pub fault_events: Vec<FaultEvent>,
}

/// Completion-side tallies the dispatch path accumulates.
struct Tallies {
    served: u64,
    on_time: u64,
    slo_misses: u64,
    served_correct: u64,
    horizon_ns: u64,
}

/// What kind of thing happens at an event.
enum EventKind {
    /// Request `index` (into the prepared stream) arrives.
    Arrival(usize),
    /// A linger timer armed for batch `generation` fires.
    BatchTimer(u64),
    /// Fault event `index` (into `cfg.fault_events`) strikes.
    Fault(usize),
}

/// Run one serving scenario end to end. The returned report — and its
/// JSON export — is a pure function of `cfg`.
pub fn run(cfg: &ServeConfig) -> Result<ServeReport, ServeError> {
    let fleet = Fleet::try_build(
        &cfg.dims,
        cfg.engine,
        &cfg.replicas,
        cfg.pretrained.as_deref(),
        cfg.sharding,
        cfg.est_ns_per_item_init,
    )?;
    run_on_fleet(cfg, fleet, cfg.dims.first().copied().unwrap_or(0))
}

/// Run one serving scenario over a ViT fleet: every replica owns a
/// [`trident_arch::transformer::PhotonicTransformer`] built from `vit`,
/// and requests carry flat `max_seq × d_model` token sequences
/// (`cfg.dims`, `cfg.engine`, and `cfg.pretrained` are ignored — the
/// transformer's weights come from its own seeded construction).
pub fn run_vit(
    cfg: &ServeConfig,
    vit: &trident_arch::transformer::TransformerConfig,
) -> Result<ServeReport, ServeError> {
    let fleet =
        Fleet::try_build_vit(vit, &cfg.replicas, cfg.sharding, cfg.est_ns_per_item_init)?;
    run_on_fleet(cfg, fleet, vit.input_width())
}

/// The shared event loop: drives arrivals, batching, dispatch, and
/// fault events over an already-built fleet. `input_width` is the flat
/// request width the front-end validates dataset samples against.
fn run_on_fleet(
    cfg: &ServeConfig,
    mut fleet: Fleet,
    input_width: usize,
) -> Result<ServeReport, ServeError> {
    let _span = obs::span("serve.run");
    let arrivals = traffic::generate_arrivals(cfg.arrivals, cfg.seed, cfg.requests);
    let requests = frontend::prepare_requests(
        &arrivals,
        &cfg.dataset,
        input_width,
        cfg.seed,
        cfg.slo_ns,
    )?;
    // Size every replica's forward scratch for the largest batch the
    // batcher can close, so steady-state dispatch allocates nothing.
    fleet.reserve_scratch(cfg.batch_max.max(1));
    for fe in &cfg.fault_events {
        if fe.replica >= fleet.len() {
            return Err(ServeError::ReplicaOutOfRange {
                replica: fe.replica,
                replicas: fleet.len(),
            });
        }
    }

    // Seed the heap: arrivals first (seq = arrival order), then fault
    // events — so a fault scheduled at exactly an arrival's timestamp
    // strikes after that arrival is admitted, a fixed, documented order.
    let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut next_seq: u64 = 0;
    let mut kinds: Vec<EventKind> = Vec::new();
    for (i, req) in requests.iter().enumerate() {
        kinds.push(EventKind::Arrival(i));
        heap.push(Reverse((req.arrival_ns, next_seq, kinds.len() - 1)));
        next_seq += 1;
    }
    for (i, fe) in cfg.fault_events.iter().enumerate() {
        kinds.push(EventKind::Fault(i));
        heap.push(Reverse((fe.at_ns, next_seq, kinds.len() - 1)));
        next_seq += 1;
    }

    let mut batcher = Batcher::new(BatchPolicy { batch_max: cfg.batch_max, linger_ns: cfg.linger_ns });
    // One histogram per replica, merged for the fleet-wide quantiles —
    // the mergeable-histogram algebra exercised on its production path.
    let mut hists: Vec<LatencyHistogram> = Vec::new();
    hists.resize_with(fleet.len(), LatencyHistogram::new);
    let offered = requests.len() as u64;
    let mut shed = 0u64;
    let mut faults_applied = 0u64;
    let mut tallies = Tallies {
        served: 0,
        on_time: 0,
        slo_misses: 0,
        served_correct: 0,
        horizon_ns: arrivals.last().copied().unwrap_or(0),
    };

    // Reused across every dispatch (zero-alloc steady state), plus the
    // hot-path allocation mark taken after the first (warm-up) dispatch:
    // final minus mark = steady-state allocations, which the zero-alloc
    // contract says is 0.
    let mut completions = Vec::new();
    let mut warm_alloc_mark: Option<u64> = None;

    // The dispatch body, shared by the size and timer triggers.
    #[allow(clippy::too_many_arguments)]
    fn close_and_dispatch(
        now_ns: u64,
        batcher: &mut Batcher,
        fleet: &mut Fleet,
        hists: &mut [LatencyHistogram],
        tallies: &mut Tallies,
        completions: &mut Vec<crate::fleet::Completion>,
        warm_alloc_mark: &mut Option<u64>,
    ) -> Result<(), ServeError> {
        let batch = batcher.close();
        if batch.is_empty() {
            return Ok(());
        }
        obs::add(obs::Counter::ServeBatches, 1);
        fleet.dispatch_into(now_ns, &batch, completions)?;
        for c in completions.iter() {
            let req = &batch[c.batch_slot];
            let latency = c.done_ns.saturating_sub(req.arrival_ns);
            hists[c.replica].record_ns(latency);
            tallies.served += 1;
            if c.done_ns <= req.deadline_ns {
                tallies.on_time += 1;
            } else {
                tallies.slo_misses += 1;
                obs::add(obs::Counter::ServeSloMisses, 1);
            }
            if c.predicted == req.label {
                tallies.served_correct += 1;
            }
            tallies.horizon_ns = tallies.horizon_ns.max(c.done_ns);
        }
        batcher.recycle(batch);
        if warm_alloc_mark.is_none() {
            *warm_alloc_mark = Some(fleet.hot_path_allocs());
        }
        Ok(())
    }

    while let Some(Reverse((now_ns, _seq, kind_idx))) = heap.pop() {
        match kinds[kind_idx] {
            EventKind::Arrival(i) => {
                let req = requests[i].clone();
                // Admission: estimated completion = the earliest any
                // route frees up (not before now), plus the estimated
                // service of the batch this request would join.
                let est_start = now_ns.max(fleet.earliest_free_ns());
                let est_done = est_start
                    .saturating_add(fleet.est_batch_ns(batcher.pending_len() as u64 + 1));
                if Batcher::should_shed(&req, est_done) {
                    shed += 1;
                    obs::add(obs::Counter::ServeShedRequests, 1);
                    continue;
                }
                obs::add(obs::Counter::ServeRequests, 1);
                match batcher.enqueue(req, now_ns) {
                    Enqueue::Full => close_and_dispatch(
                        now_ns,
                        &mut batcher,
                        &mut fleet,
                        &mut hists,
                        &mut tallies,
                        &mut completions,
                        &mut warm_alloc_mark,
                    )?,
                    Enqueue::ArmTimer { at_ns, generation } => {
                        kinds.push(EventKind::BatchTimer(generation));
                        heap.push(Reverse((at_ns, next_seq, kinds.len() - 1)));
                        next_seq += 1;
                    }
                    Enqueue::Queued => {}
                }
            }
            EventKind::BatchTimer(generation) => {
                if batcher.timer_live(generation) {
                    close_and_dispatch(
                        now_ns,
                        &mut batcher,
                        &mut fleet,
                        &mut hists,
                        &mut tallies,
                        &mut completions,
                        &mut warm_alloc_mark,
                    )?;
                }
            }
            EventKind::Fault(i) => {
                let fe = &cfg.fault_events[i];
                fleet.inject_fault(fe.replica, &fe.plan)?;
                faults_applied += 1;
            }
        }
    }
    debug_assert_eq!(batcher.pending_len(), 0, "every open batch must have a live timer");

    let merged = hists
        .iter()
        .map(LatencyHistogram::snapshot)
        .fold(obs::hist::HistSnapshot::zero(), |acc, s| acc.merge(&s));
    Ok(ServeReport {
        scenario: cfg.scenario.clone(),
        seed: cfg.seed,
        sharding: fleet.sharding().key(),
        offered,
        shed,
        served: tallies.served,
        on_time: tallies.on_time,
        slo_misses: tallies.slo_misses,
        served_correct: tallies.served_correct,
        faults_applied,
        slo_ns: cfg.slo_ns,
        p50_ns: merged.quantile_upper_ns(50, 100),
        p99_ns: merged.quantile_upper_ns(99, 100),
        p999_ns: merged.quantile_upper_ns(999, 1000),
        max_ns: merged.max_upper_ns(),
        horizon_ns: tallies.horizon_ns,
        steady_state_allocs: warm_alloc_mark
            .map(|mark| fleet.hot_path_allocs() - mark)
            .unwrap_or(0),
        replicas: fleet.ledgers(),
        latency: merged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ServeConfig {
        let dataset: Vec<(Vec<f64>, usize)> =
            (0..6).map(|c| (vec![f64::from(c) / 6.0; 8], usize::try_from(c).unwrap() % 4)).collect();
        ServeConfig {
            scenario: "smoke".to_string(),
            seed: 17,
            dims: vec![8, 6, 4],
            engine: EngineOptions::default(),
            pretrained: None,
            dataset,
            replicas: vec![
                ReplicaProfile::with_seed(1),
                ReplicaProfile::with_seed(2),
                ReplicaProfile::with_seed(3),
            ],
            sharding: Sharding::ReplicaParallel,
            batch_max: 4,
            linger_ns: 20_000,
            slo_ns: 5_000_000,
            est_ns_per_item_init: 2_000,
            arrivals: ArrivalProcess::Poisson { mean_interarrival_ns: 10_000 },
            requests: 60,
            fault_events: Vec::new(),
        }
    }

    #[test]
    fn scenario_accounting_balances_and_is_reproducible() {
        let cfg = tiny_config();
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "same config must give the same report");
        assert_eq!(a.offered, 60);
        assert_eq!(a.served + a.shed, a.offered, "every request is served or shed");
        assert_eq!(a.on_time + a.slo_misses, a.served);
        assert_eq!(a.latency.count(), a.served);
        assert!(a.p50_ns <= a.p99_ns && a.p99_ns <= a.p999_ns && a.p999_ns <= a.max_ns);
        assert!(a.horizon_ns > 0);
        let replica_requests: u64 = a.replicas.iter().map(|r| r.requests).sum();
        assert_eq!(replica_requests, a.served);
        assert!(a.replicas.iter().any(|r| r.energy_pj > 0.0));
    }

    #[test]
    fn steady_state_dispatch_allocates_nothing() {
        for sharding in [Sharding::ReplicaParallel, Sharding::LayerPipeline] {
            let mut cfg = tiny_config();
            cfg.scenario = format!("alloc_{}", sharding.key());
            cfg.sharding = sharding;
            cfg.replicas.truncate(2);
            let report = run(&cfg).unwrap();
            assert!(report.served > cfg.batch_max as u64, "needs multiple batches to be meaningful");
            assert_eq!(
                report.steady_state_allocs, 0,
                "{}: dispatch after warm-up must not allocate",
                sharding.key()
            );
        }
    }

    #[test]
    fn tight_slo_sheds_load() {
        let mut cfg = tiny_config();
        cfg.scenario = "tight".to_string();
        // An SLO shorter than one batch's service time: admission
        // control must shed once the estimator learns the real cost.
        cfg.slo_ns = 10;
        let report = run(&cfg).unwrap();
        assert!(report.shed > 0, "impossible SLO must shed load");
        assert!(report.shed_rate() > 0.0);
    }

    #[test]
    fn mid_run_fault_is_applied() {
        let mut cfg = tiny_config();
        cfg.scenario = "fault".to_string();
        cfg.fault_events = vec![FaultEvent {
            at_ns: 100_000,
            replica: 1,
            plan: FaultPlan {
                stuck_amorphous: 0.0,
                stuck_crystalline: 0.0,
                dead_rings: 0.3,
                drift_years: 0.0,
                laser_droop: 0.0,
                seed: 5,
            },
        }];
        let report = run(&cfg).unwrap();
        assert_eq!(report.faults_applied, 1);
        assert!(report.replicas[1].masked_rings > 0, "dead rings must be masked");
        assert_eq!(report.replicas[0].masked_rings, 0);
        assert!(run(&{
            let mut bad = cfg.clone();
            bad.fault_events[0].replica = 9;
            bad
        })
        .is_err());
    }

    #[test]
    fn vit_fleet_serves_end_to_end_and_is_reproducible() {
        use trident_arch::transformer::TransformerConfig;
        let vit = TransformerConfig::tiny_vit();
        let width = vit.input_width();
        let dataset: Vec<(Vec<f64>, usize)> = (0..6)
            .map(|c| (vec![f64::from(c) / 6.0 - 0.4; width], usize::try_from(c).unwrap() % 4))
            .collect();
        let mut cfg = tiny_config();
        cfg.scenario = "vit".to_string();
        cfg.dataset = dataset;
        cfg.requests = 24;
        let a = run_vit(&cfg, &vit).unwrap();
        let b = run_vit(&cfg, &vit).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "ViT serving must be reproducible");
        assert_eq!(a.served + a.shed, a.offered);
        assert!(a.served > 0, "the tiny ViT fleet must serve something");
        assert!(a.replicas.iter().any(|r| r.energy_pj > 0.0), "serving must charge energy");
        // MLP-only deployment knobs are typed errors, not silent no-ops.
        let mut droopy = cfg.clone();
        droopy.replicas[0].laser_droop = 0.1;
        assert!(matches!(
            run_vit(&droopy, &vit),
            Err(ServeError::VitUnsupported { what: "laser droop" })
        ));
        let mut piped = cfg.clone();
        piped.sharding = Sharding::LayerPipeline;
        piped.replicas.truncate(2);
        assert!(matches!(
            run_vit(&piped, &vit),
            Err(ServeError::VitUnsupported { what: "layer-pipeline sharding" })
        ));
    }

    #[test]
    fn pipeline_mode_serves_end_to_end() {
        let mut cfg = tiny_config();
        cfg.scenario = "pipe".to_string();
        cfg.sharding = Sharding::LayerPipeline;
        cfg.replicas.truncate(2); // 2 stages over 2 layers
        let report = run(&cfg).unwrap();
        assert_eq!(report.sharding, "layer_pipeline");
        assert_eq!(report.served + report.shed, report.offered);
        // Every stage sees every served request.
        for r in &report.replicas {
            assert_eq!(r.requests, report.served);
        }
    }
}
