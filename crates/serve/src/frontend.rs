//! Thread-per-core request front-end.
//!
//! The front-end turns the raw arrival schedule into fully-formed
//! [`Request`]s: it selects each request's dataset sample (a seeded,
//! counter-addressed draw — request `i`'s sample is a pure function of
//! `(seed, i)`), stamps the SLO deadline, and validates input widths.
//!
//! Preparation fans out across one worker thread per executor core over
//! MPSC channels: each worker owns a **contiguous shard** of the arrival
//! range and sends `(shard_index, requests)` back to the collector,
//! which reassembles shards in index order. Because every request is a
//! pure function of its own index, the reassembled stream is
//! byte-identical at any `TRIDENT_THREADS` — the same ordered-results
//! discipline the vendored executor uses.

use trident_streams::{seeded_u64, STREAM_TRAFFIC_INPUT};
use crate::{Request, ServeError};
use rayon::pool;
use std::sync::mpsc;

/// Build request `id` from the shared schedule: sample selection,
/// deadline stamping. Pure per-index — the unit the shards parallelize.
fn prepare_one(
    id: u64,
    arrival_ns: u64,
    dataset: &[(Vec<f64>, usize)],
    seed: u64,
    slo_ns: u64,
) -> Request {
    let pick = seeded_u64(seed, STREAM_TRAFFIC_INPUT, id) % (dataset.len() as u64);
    let (input, label) = &dataset[usize::try_from(pick).unwrap_or(0)];
    Request {
        id,
        arrival_ns,
        deadline_ns: arrival_ns.saturating_add(slo_ns),
        input: input.clone(),
        label: *label,
    }
}

/// Prepare the full request stream for an arrival schedule.
///
/// Validates the dataset (non-empty, uniform width matching
/// `input_width`), then prepares requests across `current_threads()`
/// MPSC workers and reassembles them in arrival order.
pub fn prepare_requests(
    arrivals: &[u64],
    dataset: &[(Vec<f64>, usize)],
    input_width: usize,
    seed: u64,
    slo_ns: u64,
) -> Result<Vec<Request>, ServeError> {
    if dataset.is_empty() {
        return Err(ServeError::EmptyDataset);
    }
    for (input, _) in dataset {
        if input.len() != input_width {
            return Err(ServeError::InputWidthMismatch {
                expected: input_width,
                got: input.len(),
            });
        }
    }
    let workers = pool::current_threads().max(1);
    if workers == 1 || arrivals.len() < 2 * workers {
        // Sequential fast path — identical output by construction, since
        // each request depends only on its own index.
        return Ok(arrivals
            .iter()
            .enumerate()
            .map(|(i, &at)| prepare_one(i as u64, at, dataset, seed, slo_ns))
            .collect());
    }

    let shard_len = arrivals.len().div_ceil(workers);
    let shards: Vec<(usize, &[u64])> = arrivals.chunks(shard_len).enumerate().collect();
    let mut slots: Vec<Option<Vec<Request>>> = Vec::new();
    slots.resize_with(shards.len(), || None);
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, Vec<Request>)>();
        for &(shard_idx, shard) in &shards {
            let tx = tx.clone();
            scope.spawn(move || {
                let base = shard_idx * shard_len;
                let prepared: Vec<Request> = shard
                    .iter()
                    .enumerate()
                    .map(|(j, &at)| {
                        prepare_one((base + j) as u64, at, dataset, seed, slo_ns)
                    })
                    .collect();
                // A closed receiver only happens if the collector died,
                // and then the scope propagates that panic anyway.
                let _ = tx.send((shard_idx, prepared));
            });
        }
        drop(tx);
        while let Ok((shard_idx, prepared)) = rx.recv() {
            slots[shard_idx] = Some(prepared);
        }
    });
    Ok(slots.into_iter().flatten().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Vec<(Vec<f64>, usize)> {
        (0..5).map(|c| (vec![f64::from(c) / 5.0; 4], usize::try_from(c).unwrap())).collect()
    }

    #[test]
    fn prepared_stream_is_identical_across_thread_counts() {
        let arrivals: Vec<u64> = (1..=100).map(|i| i * 500).collect();
        let data = tiny_dataset();
        pool::set_thread_override(Some(1));
        let seq = prepare_requests(&arrivals, &data, 4, 9, 1_000_000).unwrap();
        pool::set_thread_override(Some(8));
        let par = prepare_requests(&arrivals, &data, 4, 9, 1_000_000).unwrap();
        pool::set_thread_override(None);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.arrival_ns, b.arrival_ns);
            assert_eq!(a.deadline_ns, b.deadline_ns);
            assert_eq!(a.label, b.label);
            assert_eq!(a.input, b.input);
        }
    }

    #[test]
    fn rejects_bad_datasets() {
        assert!(matches!(
            prepare_requests(&[1], &[], 4, 0, 10),
            Err(ServeError::EmptyDataset)
        ));
        let bad = vec![(vec![0.0; 3], 0)];
        assert!(matches!(
            prepare_requests(&[1], &bad, 4, 0, 10),
            Err(ServeError::InputWidthMismatch { expected: 4, got: 3 })
        ));
    }

    #[test]
    fn deadlines_are_arrival_plus_slo() {
        let data = tiny_dataset();
        let reqs = prepare_requests(&[100, 200], &data, 4, 0, 50).unwrap();
        assert_eq!(reqs[0].deadline_ns, 150);
        assert_eq!(reqs[1].deadline_ns, 250);
        assert_eq!(reqs[0].id, 0);
        assert_eq!(reqs[1].id, 1);
    }
}
