//! The observability bridge: glue between [`trident_obs`] and the rest
//! of the workspace.
//!
//! Two things live here rather than in `trident-obs` itself:
//!
//! * [`sync_executor_gauges`] mirrors the executor tallies that
//!   `vendor/rayon` keeps as plain process atomics (that crate is a
//!   dependency-free stand-in for crates.io `rayon`, so it cannot depend
//!   on `trident-obs`) into the obs gauge counters.
//! * [`write_chrome_trace`] snapshots the global recorder and writes the
//!   Perfetto-loadable chrome-trace JSON to `TRIDENT_TRACE_OUT`
//!   (default `trident_trace.json`), returning the path written.
//!
//! Both are inert when `TRIDENT_TRACE` is off: the gauges stay zero and
//! no file is written, so default-mode runs touch nothing.

use std::io;
use std::path::PathBuf;
use trident_obs as obs;

/// Default output path for [`write_chrome_trace`].
pub const DEFAULT_TRACE_PATH: &str = "trident_trace.json";

/// Copy the executor's lifetime tallies into the obs gauge counters.
/// Call once, after the instrumented work, before exporting. A no-op
/// when tracing is off.
pub fn sync_executor_gauges() {
    if !obs::enabled() {
        return;
    }
    let stats = rayon::pool::stats();
    obs::store(obs::Counter::ExecutorParallelRegions, stats.parallel_regions);
    obs::store(obs::Counter::ExecutorSequentialRegions, stats.sequential_regions);
    obs::store(obs::Counter::ExecutorChunksClaimed, stats.chunks_claimed);
    obs::store(obs::Counter::ExecutorThreadsSpawned, stats.threads_spawned);
}

/// Where [`write_chrome_trace`] will write (`TRIDENT_TRACE_OUT`,
/// default [`DEFAULT_TRACE_PATH`]).
pub fn trace_output_path() -> PathBuf {
    std::env::var_os("TRIDENT_TRACE_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(DEFAULT_TRACE_PATH))
}

/// Sync the executor gauges, snapshot the global recorder, and write the
/// chrome-trace JSON to [`trace_output_path`]. Returns `Ok(None)` when
/// tracing is off (nothing written), `Ok(Some(path))` on success.
pub fn write_chrome_trace() -> io::Result<Option<PathBuf>> {
    if !obs::enabled() {
        return Ok(None);
    }
    sync_executor_gauges();
    let snap = obs::snapshot();
    let path = trace_output_path();
    std::fs::write(&path, obs::export::to_chrome_trace(&snap))?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enabled override and the executor tallies are process-global,
    // so everything lives in one #[test] (the determinism-test pattern).
    #[test]
    fn bridge_is_inert_when_disabled_and_mirrors_when_enabled() {
        obs::set_enabled_override(Some(false));
        sync_executor_gauges();
        assert!(write_chrome_trace().expect("io").is_none(), "off → nothing written");
        assert_eq!(obs::snapshot().counters.get(obs::Counter::ExecutorParallelRegions), 0);

        // Drive at least one parallel region through the executor, then
        // check the gauges mirror the pool's own tallies exactly.
        obs::set_enabled_override(Some(true));
        rayon::pool::set_thread_override(Some(2));
        let doubled = rayon::pool::execute((0..64).collect::<Vec<u32>>(), |_, x| x * 2);
        assert_eq!(doubled.len(), 64);
        rayon::pool::set_thread_override(None);
        sync_executor_gauges();
        let stats = rayon::pool::stats();
        let snap = obs::snapshot();
        assert!(stats.parallel_regions >= 1);
        assert_eq!(snap.counters.get(obs::Counter::ExecutorParallelRegions), stats.parallel_regions);
        assert_eq!(snap.counters.get(obs::Counter::ExecutorChunksClaimed), stats.chunks_claimed);
        assert_eq!(snap.counters.get(obs::Counter::ExecutorThreadsSpawned), stats.threads_spawned);

        obs::reset();
        obs::set_enabled_override(None);
    }
}
