//! Transformer workloads on Trident (DESIGN.md §16).
//!
//! Two repro_all sections extend the paper's CNN-only evaluation to the
//! transformer block family:
//!
//! * [`render_perf`] — a Table IV/V-style comparison: the analytical
//!   perf model over ViT-Tiny and the GPT-style decoder next to two of
//!   the paper's CNNs, plus per-token decode figures.
//! * [`render_kv`] — the KV-cache dataflow story: closed-form cache
//!   traffic from the workload IR, the quadratic recompute bill the
//!   cache amortises, and the functional simulator's *measured* counts
//!   and photonic-vs-digital fidelity on the tiny engines.

use crate::report::{f, TextTable};
use trident_arch::transformer::{PhotonicTransformer, TransformerConfig};
use trident_arch::TridentPerfModel;
use trident_workload::zoo;
use trident_workload::KvCachePlan;

/// Deterministic xorshift stream in [-1, 1] — seeds the tiny engines
/// without pulling an RNG crate into the library dependency set.
fn token_stream(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2003) as f64 - 1001.0) / 1001.0
        })
        .collect()
}

/// One model's analytical figures.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRow {
    /// Model name.
    pub model: String,
    /// Total multiply-accumulates, in GMACs.
    pub gmacs: f64,
    /// Parameters, in millions.
    pub mparams: f64,
    /// Inference latency in milliseconds.
    pub latency_ms: f64,
    /// Inference energy in millijoules.
    pub energy_mj: f64,
    /// Inferences per second.
    pub inf_per_s: f64,
}

/// Analytical perf of the transformer workloads next to two paper CNNs.
pub fn run_perf() -> Vec<PerfRow> {
    let pm = TridentPerfModel::paper();
    [zoo::vit_tiny(), zoo::gpt_decoder(), zoo::resnet50(), zoo::mobilenet_v2()]
        .into_iter()
        .map(|m| {
            let p = pm.analyze(&m);
            PerfRow {
                model: m.name.clone(),
                gmacs: m.total_macs() as f64 / 1e9,
                mparams: m.total_params() as f64 / 1e6,
                latency_ms: p.latency().value() / 1e6,
                energy_mj: p.energy_mj(),
                inf_per_s: p.inferences_per_second(),
            }
        })
        .collect()
}

/// Render the transformer perf comparison.
pub fn render_perf() -> String {
    let rows = run_perf();
    let mut t = TextTable::new(
        "Transformer workloads on Trident: analytical perf (Table IV/V-style)",
        &["Model", "GMACs", "MParams", "Latency ms", "Energy mJ", "Inf per s"],
    );
    for r in &rows {
        t.row(&[
            r.model.clone(),
            f(r.gmacs, 2),
            f(r.mparams, 2),
            f(r.latency_ms, 3),
            f(r.energy_mj, 3),
            f(r.inf_per_s, 1),
        ]);
    }
    let mut out = t.render();
    if let Some(gpt) = rows.iter().find(|r| r.model == "GPT-Decoder") {
        let plan = KvCachePlan::for_model(&zoo::gpt_decoder());
        if let Some(plan) = plan {
            let tokens = plan.tokens as f64;
            out.push_str(&format!(
                "\nGPT-Decoder per generated token ({} tokens per sequence):\n  {:.3} us, {:.3} uJ\n",
                plan.tokens,
                gpt.latency_ms * 1e3 / tokens,
                gpt.energy_mj * 1e3 / tokens,
            ));
        }
    }
    out
}

/// The KV-cache dataflow section's numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct KvReport {
    /// Closed-form plan of the full-size GPT decoder.
    pub plan: KvCachePlan,
    /// Measured cache element writes on the tiny functional engine.
    pub measured_writes: u64,
    /// Measured cache element reads on the tiny functional engine.
    pub measured_reads: u64,
    /// Closed-form expectation for the tiny engine's writes.
    pub expected_writes: u64,
    /// Closed-form expectation for the tiny engine's reads.
    pub expected_reads: u64,
    /// Max |photonic − digital| over the tiny ViT classify logits.
    pub vit_max_err: f64,
    /// Max |photonic − digital| over all tiny GPT causal logits.
    pub gpt_max_err: f64,
}

/// Run the tiny engines and collect measured-vs-closed-form traffic and
/// photonic-vs-digital fidelity. Fixed seeds, no thread-dependent state —
/// byte-stable at any `TRIDENT_THREADS`.
pub fn run_kv() -> KvReport {
    let plan = match KvCachePlan::for_model(&zoo::gpt_decoder()) {
        Some(p) => p,
        None => KvCachePlan { d_model: 0, layers: 0, tokens: 0 },
    };

    // Tiny GPT decode: measured counters vs closed form.
    let gpt_cfg = TransformerConfig::tiny_gpt();
    let tiny_plan = KvCachePlan {
        d_model: gpt_cfg.d_model,
        layers: gpt_cfg.depth,
        tokens: gpt_cfg.max_seq,
    };
    let tokens: Vec<Vec<f64>> = (0..gpt_cfg.max_seq)
        .map(|t| token_stream(gpt_cfg.d_model, 0x7a11 + t as u64))
        .collect();
    let mut gpt_max_err = 0.0f64;
    let (measured_writes, measured_reads) = match PhotonicTransformer::try_new(gpt_cfg.clone()) {
        Ok(mut gpt) => {
            let flat: Vec<f64> = tokens.iter().flatten().copied().collect();
            let digital = gpt.digital_forward_causal(&flat).unwrap_or_default();
            for (t, tok) in tokens.iter().enumerate() {
                if let Ok(logits) = gpt.try_decode_token(tok) {
                    if let Some(d) = digital.get(t) {
                        for (p, d) in logits.iter().zip(d) {
                            gpt_max_err = gpt_max_err.max((p - d).abs());
                        }
                    }
                }
            }
            (gpt.kv_cache_writes(), gpt.kv_cache_reads())
        }
        Err(_) => (0, 0),
    };

    // Tiny ViT classify fidelity.
    let vit_cfg = TransformerConfig::tiny_vit();
    let x = token_stream(vit_cfg.input_width(), 0x0517);
    let vit_max_err = match PhotonicTransformer::try_new(vit_cfg) {
        Ok(mut vit) => {
            let photonic = vit.try_forward_classify(&x).unwrap_or_default();
            let digital = vit.digital_forward_classify(&x).unwrap_or_default();
            photonic.iter().zip(&digital).map(|(p, d)| (p - d).abs()).fold(0.0f64, f64::max)
        }
        Err(_) => f64::NAN,
    };

    KvReport {
        plan,
        measured_writes,
        measured_reads,
        expected_writes: tiny_plan.total_writes(),
        expected_reads: tiny_plan.total_reads(),
        vit_max_err,
        gpt_max_err,
    }
}

/// Render the KV-cache dataflow section.
pub fn render_kv() -> String {
    let r = run_kv();
    let mut t = TextTable::new(
        "KV-cache dataflow: PCM banks as the cache (GPT-Decoder)",
        &["Quantity", "Elements"],
    );
    t.row(&["Cache writes (whole decode)".into(), r.plan.total_writes().to_string()]);
    t.row(&["Cache reads (whole decode)".into(), r.plan.total_reads().to_string()]);
    t.row(&["Recompute writes (no cache)".into(), r.plan.recompute_writes().to_string()]);
    let mut out = t.render();
    let amort = r.plan.recompute_writes() as f64 / r.plan.total_writes().max(1) as f64;
    out.push_str(&format!(
        "\nCache amortises PCM programming {amort:.1}x ((T+1)/2 at T = {} tokens).\n",
        r.plan.tokens
    ));
    out.push_str(&format!(
        "Functional engine (tiny GPT): measured writes {} / expected {}, measured reads {} / expected {}.\n",
        r.measured_writes, r.expected_writes, r.measured_reads, r.expected_reads
    ));
    out.push_str(&format!(
        "Photonic vs digital max |error|: ViT classify {:.4}, GPT decode {:.4}.\n",
        r.vit_max_err, r.gpt_max_err
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_rows_cover_transformers_and_cnns() {
        let rows = run_perf();
        let names: Vec<&str> = rows.iter().map(|r| r.model.as_str()).collect();
        assert_eq!(names, ["ViT-Tiny", "GPT-Decoder", "ResNet-50", "MobileNetV2"]);
        for r in &rows {
            assert!(r.latency_ms > 0.0 && r.energy_mj > 0.0 && r.inf_per_s > 0.0);
        }
        // ViT-Tiny ≈ 1.26 GMACs, 5.7 MParams (DeiT-Ti's published size).
        let vit = &rows[0];
        assert!((vit.gmacs - 1.26).abs() < 0.05, "ViT GMACs {}", vit.gmacs);
        assert!((vit.mparams - 5.7).abs() < 0.2, "ViT MParams {}", vit.mparams);
    }

    #[test]
    fn kv_report_measured_matches_closed_form() {
        let r = run_kv();
        assert_eq!(r.measured_writes, r.expected_writes);
        assert_eq!(r.measured_reads, r.expected_reads);
        assert_eq!(r.plan, KvCachePlan { d_model: 256, layers: 6, tokens: 256 });
    }

    #[test]
    fn kv_report_fidelity_is_finite_and_small() {
        let r = run_kv();
        assert!(r.vit_max_err.is_finite() && r.vit_max_err < 0.3, "{}", r.vit_max_err);
        assert!(r.gpt_max_err.is_finite() && r.gpt_max_err < 0.3, "{}", r.gpt_max_err);
    }

    #[test]
    fn renders_are_deterministic() {
        assert_eq!(render_perf(), render_perf());
        assert_eq!(render_kv(), render_kv());
        assert!(render_kv().contains("amortises"));
    }
}
