//! Table II — PE hardware device mapping across the three operating
//! modes, **verified functionally**: each mode runs on the simulated PE
//! and is diffed against exact math.

use crate::report::{f, TextTable};
use trident_arch::pe::{PeMode, ProcessingElement};

/// One operating mode's device mapping plus the measured numerical error
/// of the photonic implementation against the float reference.
#[derive(Debug, Clone)]
pub struct Row {
    /// Operating mode.
    pub mode: PeMode,
    /// Mode label.
    pub label: &'static str,
    /// Table II's device strings.
    pub mapping: (&'static str, &'static str, &'static str, &'static str),
    /// Max absolute error of the photonic computation vs exact math.
    pub max_abs_error: f64,
}

/// Run all three modes on a 4×4 PE and measure their error.
pub fn run() -> Vec<Row> {
    let w = [
        0.5, -0.25, 0.75, 0.0, //
        -1.0, 0.5, 0.25, -0.5, //
        0.0, 1.0, -0.75, 0.25, //
        0.9, -0.9, 0.1, -0.1,
    ];
    let x = [0.8, 0.2, 0.6, 0.4];

    // Mode 1: inference MAC.
    let mut pe = ProcessingElement::new(4, 4, None);
    pe.program(&w);
    let y = pe.mvm_unsigned(&x);
    let mut err_inf: f64 = 0.0;
    for r in 0..4 {
        let want: f64 = (0..4).map(|c| w[r * 4 + c] * x[c]).sum();
        err_inf = err_inf.max((y[r] - want).abs());
    }

    // Mode 2: gradient vector — bank holds Wᵀ, signed inputs.
    let mut wt = [0.0; 16];
    for r in 0..4 {
        for c in 0..4 {
            wt[c * 4 + r] = w[r * 4 + c];
        }
    }
    let mut pe2 = ProcessingElement::new(4, 4, None);
    pe2.program(&wt);
    let delta = [0.3, -0.7, 0.2, 0.5];
    let v = pe2.mvm_signed(&delta);
    let mut err_grad: f64 = 0.0;
    for j in 0..4 {
        let want: f64 = (0..4).map(|i| w[i * 4 + j] * delta[i]).sum();
        err_grad = err_grad.max((v[j] - want).abs());
    }

    // Mode 3: outer product — bank holds y, δh streams.
    let mut pe3 = ProcessingElement::new(4, 4, None);
    let dh = [0.5, -1.0, 0.25, 0.75];
    let yv = [0.8, -0.4, 0.1, 0.9];
    let outer = pe3.outer_product(&dh, &yv);
    let mut err_outer: f64 = 0.0;
    for i in 0..4 {
        for j in 0..4 {
            err_outer = err_outer.max((outer[i][j] - dh[i] * yv[j]).abs());
        }
    }

    vec![
        Row {
            mode: PeMode::Inference,
            label: "Inference",
            mapping: PeMode::Inference.device_mapping(),
            max_abs_error: err_inf,
        },
        Row {
            mode: PeMode::GradientVector,
            label: "Training Gradient Vector",
            mapping: PeMode::GradientVector.device_mapping(),
            max_abs_error: err_grad,
        },
        Row {
            mode: PeMode::OuterProduct,
            label: "Training Outer Product",
            mapping: PeMode::OuterProduct.device_mapping(),
            max_abs_error: err_outer,
        },
    ]
}

/// Render Table II with the measured functional error appended.
pub fn render() -> String {
    let mut t = TextTable::new(
        "Table II: PE Hardware Devices Mapping (functionally verified)",
        &["Mode", "Input Lasers", "MRR Weight Bank", "BPD Output", "TIA/E-O", "Max |err|"],
    );
    for row in run() {
        let (lasers, bank, bpd, tia) = row.mapping;
        t.row(&[
            row.label.to_string(),
            lasers.to_string(),
            bank.to_string(),
            bpd.to_string(),
            tia.to_string(),
            f(row.max_abs_error, 4),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_modes_are_numerically_faithful() {
        for row in run() {
            assert!(
                row.max_abs_error < 0.08,
                "{}: photonic error {} too large",
                row.label,
                row.max_abs_error
            );
        }
    }

    #[test]
    fn mappings_match_the_paper() {
        let rows = run();
        assert_eq!(rows[0].mapping.0, "x_k");
        assert_eq!(rows[1].mapping.1, "W_{k+1}^T");
        assert_eq!(rows[2].mapping.1, "y_{k-1}^T");
    }

    #[test]
    fn render_mentions_every_mode() {
        let text = render();
        assert!(text.contains("Inference"));
        assert!(text.contains("Gradient Vector"));
        assert!(text.contains("Outer Product"));
    }
}
