//! Ablation studies DESIGN.md calls out.
//!
//! * [`bits`] — in-situ training accuracy vs weight resolution (the §II-B
//!   claim that 6-bit thermal banks cannot train while 8-bit PCM can).
//! * [`tuning`] — the same Trident pipeline under each tuning technology.
//! * [`adc`] — photonic activation + LDSU vs an ADC-per-layer design.
//! * [`scale`] — PE count and peak TOPS across power envelopes.

use crate::report::{f, TextTable};
use trident_arch::config::TridentConfig;
use trident_arch::engine::PhotonicMlp;
use trident_arch::perf::TridentPerfModel;
use trident_nn::data::synthetic_digits;
use trident_photonics::tuning::{TuningMethod, TuningProfile};
use trident_photonics::units::EnergyPj;
use trident_workload::zoo;

/// Bit-resolution ablation.
pub mod bits {
    use super::*;

    /// Result of training at one weight resolution.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        /// Weight bits.
        pub bits: u8,
        /// Final training-set accuracy.
        pub accuracy: f64,
        /// Final epoch mean loss.
        pub final_loss: f64,
    }

    /// Train the same photonic MLP on the synthetic digit task at each
    /// resolution in `bit_range`. `per_class`/`epochs` size the run
    /// (tests use small values; the binaries use larger ones).
    pub fn run(bit_range: &[u8], per_class: usize, epochs: usize) -> Vec<Row> {
        run_with_lr(bit_range, per_class, epochs, 0.1)
    }

    /// [`run`] with an explicit learning rate.
    pub fn run_with_lr(
        bit_range: &[u8],
        per_class: usize,
        epochs: usize,
        learning_rate: f64,
    ) -> Vec<Row> {
        let data = synthetic_digits(per_class, 0.05, 77);
        let xs: Vec<Vec<f64>> = (0..data.len())
            .map(|i| data.inputs.row(i).iter().map(|&v| f64::from(v)).collect())
            .collect();
        bit_range
            .iter()
            .map(|&bits| {
                // Seed pinned against the vendored RNG stream (vendor/rand);
                // chosen for a healthy initial draw at test-sized runs.
                let mut engine = PhotonicMlp::new(&[64, 16, 10], 16, 16, 16, None, bits);
                let outcome = engine.train(&xs, &data.labels, learning_rate, epochs);
                Row {
                    bits,
                    accuracy: outcome.final_accuracy,
                    final_loss: outcome.loss_history.last().copied().unwrap_or(f64::NAN),
                }
            })
            .collect()
    }

    /// Render the sweep.
    pub fn render(per_class: usize, epochs: usize) -> String {
        let mut t = TextTable::new(
            "Ablation: in-situ training vs weight bit resolution",
            &["Bits", "Final accuracy", "Final loss"],
        );
        for row in run(&[4, 5, 6, 7, 8], per_class, epochs) {
            t.row(&[
                row.bits.to_string(),
                format!("{:.1}%", row.accuracy * 100.0),
                f(row.final_loss, 3),
            ]);
        }
        t.render()
    }
}

/// Tuning-method ablation: the whole Trident pipeline with each tuning
/// technology, 30 W-scaled.
pub mod tuning {
    use super::*;

    /// One tuning method's whole-pipeline cost on one model.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        /// Tuning method.
        pub method: TuningMethod,
        /// PEs after 30 W scaling.
        pub num_pes: usize,
        /// GoogleNet inference latency, µs.
        pub latency_us: f64,
        /// GoogleNet energy per inference, mJ.
        pub energy_mj: f64,
        /// Whether the resulting bank can train.
        pub can_train: bool,
    }

    /// Sweep the four tuning technologies.
    pub fn run() -> Vec<Row> {
        let model = zoo::googlenet();
        [
            TuningMethod::Gst,
            TuningMethod::Thermal,
            TuningMethod::Electric,
            TuningMethod::HybridThermalElectric,
        ]
        .into_iter()
        .map(|method| {
            let mut config = TridentConfig::paper();
            config.tuning = TuningProfile::of(method);
            let config = config.scaled_to_envelope(30.0);
            let perf = TridentPerfModel::new(config.clone(), 8);
            let analysis = perf.analyze(&model);
            Row {
                method,
                num_pes: config.num_pes,
                latency_us: analysis.latency().micros(),
                energy_mj: analysis.energy_mj(),
                can_train: config.tuning.supports_training(),
            }
        })
        .collect()
    }

    /// Render the sweep.
    pub fn render() -> String {
        let mut t = TextTable::new(
            "Ablation: tuning method (GoogleNet, 30 W envelope)",
            &["Method", "PEs", "Latency (us)", "Energy (mJ)", "Trains?"],
        );
        for row in run() {
            t.row(&[
                format!("{:?}", row.method),
                row.num_pes.to_string(),
                f(row.latency_us, 1),
                f(row.energy_mj, 2),
                if row.can_train { "yes".into() } else { "no".into() },
            ]);
        }
        t.render()
    }
}

/// ADC ablation: Trident vs Trident-with-ADCs (digital activation path).
pub mod adc {
    use super::*;

    /// Energy comparison per model.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        /// Model name.
        pub model: String,
        /// Energy with the photonic activation + LDSU (mJ).
        pub photonic_mj: f64,
        /// Energy with ADC/DAC digital activation (mJ).
        pub adc_mj: f64,
        /// Extra energy fraction the ADC path costs.
        pub overhead: f64,
    }

    /// Compare across the five models.
    pub fn run() -> Vec<Row> {
        let photonic = TridentPerfModel::paper();
        let mut adc_config = TridentConfig::paper();
        // Replace the GST activation path with an ADC/DAC round trip:
        // no reset pulses, but 10 pJ per output conversion and a standing
        // 20 mW-per-row ADC array.
        adc_config.activation_reset_energy = EnergyPj::ZERO;
        adc_config.adc_energy = EnergyPj(10.0);
        adc_config.extra_pe_power =
            trident_photonics::units::PowerMw(20.0 * adc_config.bank_rows as f64);
        let adc_model = TridentPerfModel::new(adc_config, 8);
        zoo::paper_models()
            .into_iter()
            .map(|model| {
                let p = photonic.analyze(&model).energy_mj();
                let a = adc_model.analyze(&model).energy_mj();
                Row { model: model.name.clone(), photonic_mj: p, adc_mj: a, overhead: a / p - 1.0 }
            })
            .collect()
    }

    /// Render the comparison.
    pub fn render() -> String {
        let mut t = TextTable::new(
            "Ablation: photonic activation + LDSU vs ADC-per-layer",
            &["Model", "Photonic act. (mJ)", "ADC path (mJ)", "ADC overhead"],
        );
        for row in run() {
            t.row(&[
                row.model.clone(),
                f(row.photonic_mj, 2),
                f(row.adc_mj, 2),
                format!("{:+.1}%", row.overhead * 100.0),
            ]);
        }
        t.render()
    }
}

/// Power-envelope scaling ablation.
pub mod scale {
    use super::*;

    /// One envelope point.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        /// Power envelope, watts.
        pub envelope_w: f64,
        /// PEs that fit.
        pub num_pes: usize,
        /// Peak TOPS at that scale.
        pub peak_tops: f64,
        /// VGG-16 inferences/s at that scale.
        pub vgg_rate: f64,
    }

    /// Sweep envelopes from 5 W to 60 W.
    pub fn run() -> Vec<Row> {
        let model = zoo::vgg16();
        [5.0, 10.0, 20.0, 30.0, 45.0, 60.0]
            .into_iter()
            .map(|envelope_w| {
                let config = TridentConfig::paper().scaled_to_envelope(envelope_w);
                let perf = TridentPerfModel::new(config.clone(), 8);
                Row {
                    envelope_w,
                    num_pes: config.num_pes,
                    peak_tops: config.peak_tops(),
                    vgg_rate: perf.analyze(&model).inferences_per_second(),
                }
            })
            .collect()
    }

    /// Render the sweep.
    pub fn render() -> String {
        let mut t = TextTable::new(
            "Ablation: power envelope scaling (VGG-16)",
            &["Envelope (W)", "PEs", "Peak TOPS", "VGG-16 inf/s"],
        );
        for row in run() {
            t.row(&[
                f(row.envelope_w, 0),
                row.num_pes.to_string(),
                f(row.peak_tops, 2),
                f(row.vgg_rate, 1),
            ]);
        }
        t.render()
    }
}

/// DFA-vs-backprop ablation (the related-work \[9\] comparison).
pub mod dfa_vs_bp {
    use super::*;
    use trident_arch::dfa::{train_dfa, DfaFeedback};

    /// Comparison of the two training rules on identical hardware/data.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        /// Training rule name.
        pub rule: &'static str,
        /// Final accuracy.
        pub accuracy: f64,
        /// GST programming energy spent (uJ).
        pub programming_uj: f64,
    }

    /// Train the same MLP with backprop and with DFA.
    pub fn run(per_class: usize, epochs: usize) -> Vec<Row> {
        let data = synthetic_digits(per_class, 0.05, 31);
        let xs: Vec<Vec<f64>> = (0..data.len())
            .map(|i| data.inputs.row(i).iter().map(|&v| f64::from(v)).collect())
            .collect();

        let mut bp = PhotonicMlp::new(&[64, 16, 10], 16, 16, 7, None, 8);
        let bp_outcome = bp.train(&xs, &data.labels, 0.1, epochs);

        let mut dfa_engine = PhotonicMlp::new(&[64, 16, 10], 16, 16, 7, None, 8);
        let mut fb = DfaFeedback::for_engine(&dfa_engine, 41);
        train_dfa(&mut dfa_engine, &mut fb, &xs, &data.labels, 0.3, epochs);
        let dfa_acc = dfa_engine.accuracy(&xs, &data.labels);
        let dfa_prog = dfa_engine.programming_energy() + fb.programming_energy();

        vec![
            Row {
                rule: "backpropagation (Table II)",
                accuracy: bp_outcome.final_accuracy,
                programming_uj: bp_outcome.programming_energy.value() / 1e6,
            },
            Row {
                rule: "direct feedback alignment",
                accuracy: dfa_acc,
                programming_uj: dfa_prog.value() / 1e6,
            },
        ]
    }

    /// Render the comparison.
    pub fn render(per_class: usize, epochs: usize) -> String {
        let mut t = TextTable::new(
            "Ablation: backpropagation vs direct feedback alignment",
            &["Training rule", "Final accuracy", "GST programming (uJ)"],
        );
        for row in run(per_class, epochs) {
            t.row(&[
                row.rule.to_string(),
                format!("{:.1}%", row.accuracy * 100.0),
                f(row.programming_uj, 1),
            ]);
        }
        t.render()
    }
}

/// Fabrication-variation ablation (the paper's §I motivation).
pub mod variation {
    use super::*;
    use trident_arch::variation::VariationStudy;

    /// Run the deploy-then-finetune study over sigma points.
    pub fn run(
        sigmas_nm: &[f64],
        per_class: usize,
        trials: usize,
    ) -> Vec<trident_arch::variation::VariationRow> {
        let data = synthetic_digits(per_class, 0.05, 99);
        let xs: Vec<Vec<f64>> = (0..data.len())
            .map(|i| data.inputs.row(i).iter().map(|&v| f64::from(v)).collect())
            .collect();
        let study = VariationStudy { trials, ..Default::default() };
        study.run(sigmas_nm, &xs, &data.labels)
    }

    /// Render the study.
    pub fn render(per_class: usize, trials: usize) -> String {
        let mut t = TextTable::new(
            "Ablation: fabrication variation — deploy vs in-situ fine-tune",
            &["sigma (nm)", "Ideal acc.", "Deployed acc.", "Fine-tuned acc.", "Recovery"],
        );
        for row in run(&[0.0, 0.01, 0.02, 0.04, 0.08], per_class, trials) {
            t.row(&[
                format!("{:.3}", row.sigma_nm),
                format!("{:.1}%", row.ideal_accuracy * 100.0),
                format!("{:.1}%", row.deployed_accuracy * 100.0),
                format!("{:.1}%", row.finetuned_accuracy * 100.0),
                format!("{:.0}%", row.recovery() * 100.0),
            ]);
        }
        t.render()
    }
}

/// Fault-injection ablation: accuracy vs stuck-cell rate, with the
/// graceful-degradation stack (program-and-verify, spare-ring remap,
/// dead-channel masking, in-situ fine-tuning) recovering what it can.
pub mod faults {
    use super::*;
    use trident_arch::faults::{FaultCampaign, FaultCampaignRow, FaultPlan};

    /// Run the inject-then-recover campaign over stuck-cell rates.
    pub fn run(stuck_rates: &[f64], per_class: usize, trials: usize) -> Vec<FaultCampaignRow> {
        let data = synthetic_digits(per_class, 0.05, 99);
        let xs: Vec<Vec<f64>> = (0..data.len())
            .map(|i| data.inputs.row(i).iter().map(|&v| f64::from(v)).collect())
            .collect();
        let plans: Vec<FaultPlan> =
            stuck_rates.iter().map(|&rate| FaultPlan::stuck_cells(rate, 404)).collect();
        let campaign = FaultCampaign { trials, ..Default::default() };
        campaign.run(&plans, &xs, &data.labels)
    }

    /// Render the campaign as the accuracy-vs-fault-rate table.
    pub fn render(per_class: usize, trials: usize) -> String {
        let mut t = TextTable::new(
            "Ablation: stuck GST cells — raw hit vs wear-level + fine-tune recovery",
            &[
                "stuck cells",
                "Ideal acc.",
                "Faulted acc.",
                "Recovered acc.",
                "Recovery",
                "remaps",
                "masks",
            ],
        );
        for row in run(&[0.0, 0.01, 0.03, 0.06, 0.12], per_class, trials) {
            t.row(&[
                format!("{:.1}%", row.plan.hard_fault_rate() * 100.0),
                format!("{:.1}%", row.ideal_accuracy * 100.0),
                format!("{:.1}%", row.faulted_accuracy * 100.0),
                format!("{:.1}%", row.finetuned_accuracy * 100.0),
                format!("{:.0}%", row.recovery() * 100.0),
                format!("{:.1}", row.remapped),
                format!("{:.1}", row.masked),
            ]);
        }
        t.render()
    }
}

/// Temporal-drift ablation: accuracy vs hours since programming under
/// the statistical PCM model, with and without reference-column drift
/// compensation and dual adaptive training. The statistical layer is
/// opt-in — every other table in this binary family runs with it off.
pub mod drift {
    use super::*;
    use trident_arch::variation::{DriftRow, DriftStudy};

    /// Deployment ages the rendered table sweeps (one day, one week, one
    /// month after programming).
    pub const HOUR_POINTS: &[f64] = &[0.0, 24.0, 168.0, 720.0];

    /// Run the deploy-drift-recover study over deployment ages.
    pub fn run(hour_points: &[f64], per_class: usize, trials: usize) -> Vec<DriftRow> {
        let data = synthetic_digits(per_class, 0.05, 99);
        let xs: Vec<Vec<f64>> = (0..data.len())
            .map(|i| data.inputs.row(i).iter().map(|&v| f64::from(v)).collect())
            .collect();
        let study = DriftStudy { trials, ..Default::default() };
        study.run(hour_points, &xs, &data.labels)
    }

    /// Render the study as the accuracy-vs-deployment-age table.
    pub fn render(per_class: usize, trials: usize) -> String {
        let mut t = TextTable::new(
            "Ablation: PCM conductance drift — compensation and dual adaptive training",
            &["hours", "t=0 acc.", "Drifted acc.", "Compensated acc.", "DAT acc.", "DAT gap (pt)"],
        );
        for row in run(HOUR_POINTS, per_class, trials) {
            t.row(&[
                format!("{:.0}", row.hours),
                format!("{:.1}%", row.baseline_accuracy * 100.0),
                format!("{:.1}%", row.uncompensated_accuracy * 100.0),
                format!("{:.1}%", row.compensated_accuracy * 100.0),
                format!("{:.1}%", row.adaptive_accuracy * 100.0),
                format!("{:+.1}", -row.residual_gap() * 100.0),
            ]);
        }
        t.render()
    }
}

/// Fleet-serving ablation (ROADMAP item 1): the dynamic-batching
/// service over N simulated replicas under Poisson and bursty load,
/// replica-parallel and layer-pipeline sharding.
pub mod serve {
    use super::*;
    use trident_arch::engine::EngineOptions;
    use trident_serve::{ArrivalProcess, ReplicaProfile, ServeConfig, ServeReport, Sharding};

    /// Network served by every scenario — the repo's standard digit MLP
    /// (the in-situ training scheme converges well at this depth). The
    /// same pretrained weights drive the 3-replica parallel fleet and a
    /// 2-stage layer pipeline (one weight layer per stage).
    pub const DIMS: [usize; 3] = [64, 16, 10];

    /// Pretrain the shared model once on the synthetic digit task and
    /// return its deployable weights.
    fn pretrain(per_class: usize) -> Vec<Vec<f64>> {
        let data = synthetic_digits(per_class, 0.05, 42);
        let xs: Vec<Vec<f64>> = (0..data.len())
            .map(|i| data.inputs.row(i).iter().map(|&v| f64::from(v)).collect())
            .collect();
        let mut ideal =
            PhotonicMlp::with_options(&DIMS, EngineOptions { seed: 11, ..Default::default() });
        ideal.train(&xs, &data.labels, 0.1, 12);
        ideal.snapshot_weights()
    }

    /// The sample pool requests draw from.
    fn dataset(per_class: usize) -> Vec<(Vec<f64>, usize)> {
        let data = synthetic_digits(per_class, 0.05, 42);
        (0..data.len())
            .map(|i| {
                let x: Vec<f64> = data.inputs.row(i).iter().map(|&v| f64::from(v)).collect();
                (x, data.labels[i])
            })
            .collect()
    }

    /// A scenario over the shared model: `replicas` chips with distinct
    /// fabrication identities and mildly different laser budgets.
    fn scenario(
        name: &str,
        arrivals: ArrivalProcess,
        sharding: Sharding,
        replicas: usize,
        pretrained: Vec<Vec<f64>>,
        dataset: Vec<(Vec<f64>, usize)>,
        requests: usize,
    ) -> ServeConfig {
        let profiles = (0..replicas)
            .map(|i| ReplicaProfile {
                variation_seed: 100 + i as u64,
                noise_seed: None,
                // Replica 0 runs at full power; later replicas droop a
                // little more each — independent laser budgets.
                laser_droop: 0.02 * i as f64,
                pre_age_hours: 0.0,
            })
            .collect();
        ServeConfig {
            scenario: name.to_string(),
            seed: 2024,
            dims: DIMS.to_vec(),
            engine: EngineOptions::default(),
            pretrained: Some(pretrained),
            dataset,
            replicas: profiles,
            sharding,
            batch_max: 8,
            linger_ns: 5_000,
            slo_ns: 30_000,
            est_ns_per_item_init: 4_000,
            arrivals,
            requests,
            fault_events: Vec::new(),
        }
    }

    /// Run the three standard scenarios — Poisson and bursty arrivals
    /// over a 3-replica parallel fleet, then Poisson over a 2-stage
    /// layer pipeline — sharing one pretrained model.
    pub fn run(per_class: usize, requests: usize) -> Vec<ServeReport> {
        let weights = pretrain(per_class);
        let pool = dataset(per_class);
        let poisson = ArrivalProcess::Poisson { mean_interarrival_ns: 15_000 };
        // Bursts arrive at ~10 requests/µs — denser than the fleet's
        // aggregate service rate, so queues build inside a burst and
        // admission control has real shedding decisions to make.
        let bursty = ArrivalProcess::Bursty {
            on_mean_ns: 30_000,
            off_mean_ns: 120_000,
            on_interarrival_ns: 100,
        };
        [
            ("poisson/replica-parallel", poisson, Sharding::ReplicaParallel, 3),
            ("bursty/replica-parallel", bursty, Sharding::ReplicaParallel, 3),
            ("poisson/layer-pipeline", poisson, Sharding::LayerPipeline, 2),
        ]
        .into_iter()
        .filter_map(|(name, arrivals, sharding, replicas)| {
            trident_serve::sim::run(&scenario(
                name,
                arrivals,
                sharding,
                replicas,
                weights.clone(),
                pool.clone(),
                requests,
            ))
            .ok()
        })
        .collect()
    }

    /// Render the serving ablation: the headline latency/goodput table
    /// plus a per-replica energy/wear table.
    pub fn render(per_class: usize, requests: usize) -> String {
        render_reports(&run(per_class, requests))
    }

    /// Render already-computed reports — lets a caller that also needs
    /// the raw [`ServeReport`]s (JSON export, steady-state diagnostics)
    /// run each scenario exactly once.
    pub fn render_reports(reports: &[ServeReport]) -> String {
        let mut t = TextTable::new(
            "Ablation: fleet serving — dynamic batching under SLO (3 replicas)",
            &[
                "scenario", "offered", "served", "shed", "p50 us", "p99 us", "p999 us",
                "goodput rps", "SLO miss", "acc.",
            ],
        );
        for r in reports {
            t.row(&[
                r.scenario.clone(),
                format!("{}", r.offered),
                format!("{}", r.served),
                format!("{:.1}%", r.shed_rate() * 100.0),
                f(r.p50_ns as f64 / 1000.0, 1),
                f(r.p99_ns as f64 / 1000.0, 1),
                f(r.p999_ns as f64 / 1000.0, 1),
                f(r.goodput_rps(), 0),
                format!("{}", r.slo_misses),
                format!("{:.1}%", r.served_accuracy() * 100.0),
            ]);
        }
        let mut per_replica = TextTable::new(
            "Per-replica serving ledger (energy excludes deployment programming)",
            &["scenario", "replica", "requests", "batches", "busy us", "energy nJ", "masked"],
        );
        for r in reports {
            for rep in &r.replicas {
                per_replica.row(&[
                    r.scenario.clone(),
                    format!("{}", rep.id),
                    format!("{}", rep.requests),
                    format!("{}", rep.batches),
                    f(rep.busy_ns as f64 / 1000.0, 1),
                    f(rep.energy_pj / 1000.0, 1),
                    format!("{}", rep.masked_rings),
                ]);
            }
        }
        format!("{}\n{}", t.render(), per_replica.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_bits_train_six_bits_stall() {
        // The §II-B / Wang-et-al. claim, reproduced functionally: with
        // identical data, initialisation and learning rate, the 8-bit
        // (GST) bank learns the digit task while the 6-bit (thermal)
        // bank's updates round away.
        let rows = bits::run(&[6, 8], 4, 12);
        let six = rows.iter().find(|r| r.bits == 6).unwrap();
        let eight = rows.iter().find(|r| r.bits == 8).unwrap();
        assert!(
            eight.accuracy > 0.8,
            "8-bit training should learn the task, got {:.1}%",
            eight.accuracy * 100.0
        );
        assert!(
            eight.accuracy > six.accuracy + 0.2,
            "8-bit ({:.1}%) must clearly beat 6-bit ({:.1}%)",
            eight.accuracy * 100.0,
            six.accuracy * 100.0
        );
    }

    #[test]
    fn gst_tuning_wins_the_method_sweep() {
        // GST is the cheapest method and the only one that trains. Note a
        // nuance our device model surfaces: volatile methods' *write*
        // power per ring is lower than GST's burst (1.7 vs 2.2 mW), so a
        // worst-case 30 W cap can admit them a few extra PEs — but they
        // pay hold power forever and stay below 8 bits, so they lose on
        // both energy and capability.
        let rows = tuning::run();
        let gst = rows.iter().find(|r| r.method == TuningMethod::Gst).unwrap();
        for row in &rows {
            if row.method != TuningMethod::Gst {
                assert!(gst.energy_mj < row.energy_mj, "{:?} energy", row.method);
                assert!(!row.can_train, "{:?} should not train", row.method);
            }
        }
        assert!(gst.can_train);
        assert_eq!(gst.num_pes, 44);
    }

    #[test]
    fn adc_path_always_costs_more() {
        for row in adc::run() {
            assert!(
                row.overhead > 0.0,
                "{}: ADC path must cost extra energy, got {:+.1}%",
                row.model,
                row.overhead * 100.0
            );
        }
    }

    #[test]
    fn throughput_scales_with_envelope() {
        let rows = scale::run();
        for pair in rows.windows(2) {
            assert!(pair[1].num_pes >= pair[0].num_pes);
            assert!(pair[1].peak_tops >= pair[0].peak_tops);
            assert!(pair[1].vgg_rate >= pair[0].vgg_rate * 0.99);
        }
        // The paper's point: 30 W admits 44 PEs.
        let at30 = rows.iter().find(|r| r.envelope_w == 30.0).unwrap();
        assert_eq!(at30.num_pes, 44);
    }
}
