//! Table I — MRR tuning method comparison.

use crate::report::{f, TextTable};
use trident_photonics::tuning::{TuningMethod, TuningProfile};

/// One tuning technology's figures of merit.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Method name as printed in the paper.
    pub method: &'static str,
    /// The full profile.
    pub profile: TuningProfile,
}

/// The three methods of Table I (thermal, electric, GST).
pub fn run() -> Vec<Row> {
    vec![
        Row { method: "Thermal", profile: TuningProfile::of(TuningMethod::Thermal) },
        Row { method: "Electric", profile: TuningProfile::of(TuningMethod::Electric) },
        Row { method: "GST", profile: TuningProfile::of(TuningMethod::Gst) },
    ]
}

/// Render the table (extended with the columns the paper discusses in
/// prose: hold power, volatility, bit resolution).
pub fn render() -> String {
    let mut t = TextTable::new(
        "Table I: Tuning Method Comparison",
        &["Method", "Tuning Energy", "Speed", "Hold Power", "Non-volatile", "Bits"],
    );
    for row in run() {
        let p = &row.profile;
        t.row(&[
            row.method.to_string(),
            format!("{} pJ", f(p.write_energy.value(), 0)),
            format!("{} ns", f(p.write_time.value(), 0)),
            format!("{} mW", f(p.hold_power.value(), 2)),
            if p.non_volatile { "yes".into() } else { "no".into() },
            p.bit_resolution.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_paper_table_i() {
        let rows = run();
        assert_eq!(rows.len(), 3);
        let gst = rows.iter().find(|r| r.method == "GST").unwrap();
        assert_eq!(gst.profile.write_energy.value(), 660.0);
        assert_eq!(gst.profile.write_time.value(), 300.0);
        let thermal = rows.iter().find(|r| r.method == "Thermal").unwrap();
        assert_eq!(thermal.profile.write_energy.nanojoules(), 1.02);
        assert_eq!(thermal.profile.write_time.micros(), 0.6);
        let electric = rows.iter().find(|r| r.method == "Electric").unwrap();
        assert_eq!(electric.profile.write_time.value(), 500.0);
    }

    #[test]
    fn render_contains_headline_numbers() {
        let text = render();
        assert!(text.contains("660 pJ"));
        assert!(text.contains("300 ns"));
        assert!(text.contains("GST"));
        assert!(text.contains("Thermal"));
    }
}
