//! Table V — time to train 50 000 images: NVIDIA AGX Xavier vs Trident.
//!
//! Xavier's training rate follows the paper's method (training throughput
//! derived from inference throughput); Trident's adds the bank-retuning
//! overhead of its training schedule, which is what makes GoogleNet the
//! crossover case (the only model where the GPU wins).

use crate::experiments::TABLE_V_IMAGES;
use crate::report::{f, pct, TextTable};
use trident_arch::perf::TridentPerfModel;
use trident_arch::training::{inference_derived_training_time, trident_training_time};
use trident_baselines::electronic::nvidia_agx_xavier;
use trident_baselines::traits::AcceleratorModel;
use trident_workload::zoo;

/// Mini-batch the training schedule amortizes bank retuning over.
pub const TRAINING_BATCH: usize = 8;

/// One model's Table V row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// Xavier's time to train 50 000 images, seconds.
    pub xavier_seconds: f64,
    /// Trident's time, seconds.
    pub trident_seconds: f64,
    /// Percent change (negative = Trident faster), as a fraction.
    pub percent_change: f64,
}

/// The four Table V models, paper order.
pub fn run() -> Vec<Row> {
    let xavier = nvidia_agx_xavier();
    let perf = TridentPerfModel::paper();
    [zoo::mobilenet_v2(), zoo::googlenet(), zoo::resnet50(), zoo::vgg16()]
        .into_iter()
        .map(|model| {
            let xavier_rate = xavier.inferences_per_second(&model);
            let xavier_t =
                inference_derived_training_time(&model.name, xavier_rate, TABLE_V_IMAGES);
            let trident_t =
                trident_training_time(&perf, &model, TABLE_V_IMAGES, TRAINING_BATCH);
            Row {
                model: model.name.clone(),
                xavier_seconds: xavier_t.total_seconds,
                trident_seconds: trident_t.total_seconds,
                percent_change: trident_t.total_seconds / xavier_t.total_seconds - 1.0,
            }
        })
        .collect()
}

/// Render Table V.
pub fn render() -> String {
    let mut t = TextTable::new(
        "Table V: Edge Accelerators Time to Train 50,000 Images",
        &["NN Model", "NVIDIA AGX Xavier", "Trident", "Percent Change"],
    );
    for row in run() {
        t.row(&[
            row.model.clone(),
            format!("{} s", f(row.xavier_seconds, 1)),
            format!("{} s", f(row.trident_seconds, 1)),
            pct(row.percent_change),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_model(rows: &[Row], name: &str) -> Row {
        rows.iter().find(|r| r.model == name).cloned().unwrap()
    }

    #[test]
    fn trident_wins_three_of_four() {
        // The paper's shape: Trident is faster on MobileNetV2 (−8.5%),
        // ResNet-50 (−15.9%) and VGG-16 (−38.5%).
        let rows = run();
        for model in ["MobileNetV2", "ResNet-50", "VGG-16"] {
            let r = by_model(&rows, model);
            assert!(
                r.percent_change < 0.0,
                "{model}: Trident {:.1}s should beat Xavier {:.1}s",
                r.trident_seconds,
                r.xavier_seconds
            );
        }
    }

    #[test]
    fn googlenet_is_the_crossover() {
        // The paper's one loss: GoogleNet (+10.6%) — many small layers
        // make retuning overhead dominate.
        let r = by_model(&run(), "GoogleNet");
        assert!(
            r.percent_change > 0.0,
            "GoogleNet: Trident {:.1}s should lose to Xavier {:.1}s",
            r.trident_seconds,
            r.xavier_seconds
        );
        // And the loss should be modest (paper: ~10%, "a 6 second
        // difference"), not catastrophic.
        assert!(r.percent_change < 0.6, "GoogleNet loss {:.1}%", r.percent_change * 100.0);
    }

    #[test]
    fn magnitudes_are_in_the_papers_ballpark() {
        let rows = run();
        let vgg = by_model(&rows, "VGG-16");
        // Paper: Xavier 1293.8 s, Trident 796.1 s.
        assert!(
            (600.0..2600.0).contains(&vgg.xavier_seconds),
            "Xavier VGG {}",
            vgg.xavier_seconds
        );
        assert!(
            (400.0..1600.0).contains(&vgg.trident_seconds),
            "Trident VGG {}",
            vgg.trident_seconds
        );
        let mobilenet = by_model(&rows, "MobileNetV2");
        // Paper: 32.5 s / 29.7 s — tens of seconds.
        assert!(
            (5.0..120.0).contains(&mobilenet.trident_seconds),
            "Trident MobileNetV2 {}",
            mobilenet.trident_seconds
        );
    }

    #[test]
    fn large_models_give_trident_its_biggest_wins() {
        // Paper ordering has VGG-16 as the biggest win (-38.5%); in our
        // model ResNet-50 and VGG-16 trade places, but both big models
        // beat MobileNetV2's margin, preserving the trend that Trident's
        // advantage grows with model size.
        let rows = run();
        let mobilenet = by_model(&rows, "MobileNetV2").percent_change;
        for model in ["VGG-16", "ResNet-50"] {
            assert!(
                by_model(&rows, model).percent_change <= mobilenet,
                "{model} should out-win MobileNetV2"
            );
        }
    }

    #[test]
    fn render_contains_all_models() {
        let text = render();
        for model in ["MobileNetV2", "GoogleNet", "ResNet-50", "VGG-16"] {
            assert!(text.contains(model));
        }
    }
}
