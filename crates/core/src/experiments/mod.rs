//! One runner per table/figure of the paper's evaluation, plus the
//! ablations DESIGN.md calls out.
//!
//! Every runner exposes `run(…) ->` typed rows and `render(…) -> String`
//! so the same code feeds the benchmark binaries, the integration tests,
//! and downstream users.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`table1`] | Table I — MRR tuning method comparison |
//! | [`table2`] | Table II — PE device mapping across operating modes |
//! | [`table3`] | Table III — PE power breakdown + steady-state claim |
//! | [`table4`] | Table IV — accelerator TOPS / W / TOPS-per-W / training |
//! | [`table5`] | Table V — time to train 50 000 images |
//! | [`fig3`] | Fig. 3 — GST activation cell transfer curve |
//! | [`fig4`] | Fig. 4 — photonic accelerator energy comparison |
//! | [`fig5`] | Fig. 5 — Trident chip area breakdown |
//! | [`fig6`] | Fig. 6 — inferences/s across all six accelerators |
//! | [`ablations`] | bit-resolution, tuning-method, ADC, PE-scaling, DFA, variation sweeps |
//! | [`transformer`] | transformer workloads: perf comparison + KV-cache dataflow |
//! | [`gate`] | the reproduction gate: every claim checked in one pass |

pub mod ablations;
pub mod fig3;
pub mod gate;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod transformer;

/// The image count Table V trains over.
pub const TABLE_V_IMAGES: u64 = 50_000;
