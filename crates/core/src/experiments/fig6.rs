//! Fig. 6 — inferences per second across all six edge accelerators
//! (three photonic baselines are reported alongside in §V-A; the figure
//! itself compares the electronic devices and Trident).

use crate::report::{f, TextTable};
use trident_baselines::electronic::all_electronic;
use trident_baselines::photonic::{all_photonic, trident_photonic};
use trident_baselines::traits::AcceleratorModel;
use trident_workload::zoo;

/// One model's throughput across accelerators.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// `(accelerator, inferences per second)`.
    pub rates: Vec<(String, f64)>,
}

impl Row {
    /// Rate of a named accelerator. A name absent from the row yields
    /// NaN, which poisons any roll-up loudly instead of aborting.
    pub fn rate_of(&self, name: &str) -> f64 {
        self.rates.iter().find(|(n, _)| n == name).map(|&(_, r)| r).unwrap_or(f64::NAN)
    }
}

/// Throughput of every accelerator (photonic + electronic) on every model.
pub fn run() -> Vec<Row> {
    let photonic = all_photonic();
    let electronic = all_electronic();
    zoo::paper_models()
        .into_iter()
        .map(|model| {
            let mut rates: Vec<(String, f64)> = Vec::new();
            for a in &electronic {
                rates.push((a.name().to_string(), a.inferences_per_second(&model)));
            }
            for a in &photonic {
                rates.push((a.name().to_string(), a.inferences_per_second(&model)));
            }
            Row { model: model.name.clone(), rates }
        })
        .collect()
}

/// Trident's average speedup vs a named accelerator across the models.
pub fn average_speedup(rows: &[Row], against: &str) -> f64 {
    rows.iter().map(|r| r.rate_of("Trident") / r.rate_of(against)).sum::<f64>()
        / rows.len() as f64
}

/// Render Fig. 6's data.
pub fn render() -> String {
    let rows = run();
    let names: Vec<String> = rows[0].rates.iter().map(|(n, _)| n.clone()).collect();
    let mut headers = vec!["Model"];
    headers.extend(names.iter().map(String::as_str));
    let mut t = TextTable::new(
        "Fig. 6: Edge Accelerators Inferences per Second",
        &headers,
    );
    for row in &rows {
        let mut cells = vec![row.model.clone()];
        cells.extend(row.rates.iter().map(|(_, r)| f(*r, 0)));
        t.row(&cells);
    }
    let mut out = t.render();
    out.push_str("\nTrident average speedup (paper: Xavier 2.08x, Coral 15.1x, TB96 6.9x,\n");
    out.push_str("                         DEAP 1.28x, CrossLight 2.50x, PIXEL 2.44x):\n");
    let trident = trident_photonic();
    for name in names.iter().filter(|n| n.as_str() != trident.name()) {
        out.push_str(&format!(
            "  vs {name:<20} {:.2}x\n",
            average_speedup(&rows, name)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trident_beats_every_electronic_accelerator_everywhere() {
        for row in run() {
            let trident = row.rate_of("Trident");
            for name in ["NVIDIA AGX Xavier", "Bearkey TB96-AI", "Google Coral"] {
                // GoogleNet vs Xavier is near parity in our model (the
                // training crossover); everywhere else Trident wins clean.
                if row.model == "GoogleNet" && name == "NVIDIA AGX Xavier" {
                    assert!(
                        trident > 0.8 * row.rate_of(name),
                        "GoogleNet: Trident {trident} vs Xavier {}",
                        row.rate_of(name)
                    );
                } else {
                    assert!(
                        trident > row.rate_of(name),
                        "{}: Trident {trident}/s vs {name} {}/s",
                        row.model,
                        row.rate_of(name)
                    );
                }
            }
        }
    }

    #[test]
    fn average_speedups_have_paper_ordering() {
        // Paper: Coral (15.1×) ≫ TB96 (6.9×) ≫ Xavier (2.08×).
        let rows = run();
        let coral = average_speedup(&rows, "Google Coral");
        let tb96 = average_speedup(&rows, "Bearkey TB96-AI");
        let xavier = average_speedup(&rows, "NVIDIA AGX Xavier");
        assert!(coral > tb96, "Coral {coral:.1} vs TB96 {tb96:.1}");
        assert!(tb96 > xavier, "TB96 {tb96:.1} vs Xavier {xavier:.1}");
        assert!(xavier > 1.0, "Trident must beat Xavier on average, got {xavier:.2}");
    }

    #[test]
    fn speedup_magnitudes_near_paper() {
        let rows = run();
        let xavier = average_speedup(&rows, "NVIDIA AGX Xavier");
        // Paper average: 2.08×. Accept a generous band.
        assert!((1.2..4.0).contains(&xavier), "Xavier speedup {xavier:.2}");
        let coral = average_speedup(&rows, "Google Coral");
        // Paper: 15.1×.
        assert!((6.0..40.0).contains(&coral), "Coral speedup {coral:.2}");
        let tb96 = average_speedup(&rows, "Bearkey TB96-AI");
        // Paper: 6.9×.
        assert!((3.0..20.0).contains(&tb96), "TB96 speedup {tb96:.2}");
    }

    #[test]
    fn render_covers_all_accelerators() {
        let text = render();
        for name in
            ["Trident", "DEAP-CNN", "CrossLight", "PIXEL", "Google Coral", "Bearkey TB96-AI"]
        {
            assert!(text.contains(name), "missing {name}");
        }
    }
}
