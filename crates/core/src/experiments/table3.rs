//! Table III — Trident PE power breakdown, plus the §IV steady-state
//! claim (0.67 W tuning-burst → 0.11 W once weights are resident).

use crate::report::{f, TextTable};
use trident_arch::config::TridentConfig;
use trident_arch::power::PePowerModel;
use trident_photonics::ledger::PowerLedger;

/// The Table III result.
#[derive(Debug, Clone)]
pub struct Result {
    /// Per-device worst-case breakdown.
    pub breakdown: PowerLedger,
    /// Worst-case PE power in watts.
    pub total_w: f64,
    /// Steady-state PE power (weights resident) in watts.
    pub steady_w: f64,
    /// Power saved by non-volatility, as a fraction.
    pub savings: f64,
}

/// Compute the breakdown for the paper's configuration.
pub fn run() -> Result {
    let model = PePowerModel::new(&TridentConfig::paper());
    let breakdown = model.breakdown();
    let total_w = model.worst_case().watts();
    let steady_w = model.steady_state().watts();
    Result { breakdown, total_w, steady_w, savings: 1.0 - steady_w / total_w }
}

/// Render the table and the steady-state note.
pub fn render() -> String {
    let r = run();
    let mut t = TextTable::new(
        "Table III: Trident Device Power Breakdown",
        &["Component", "Power (mW)", "Percentage"],
    );
    for (item, power) in r.breakdown.ranked() {
        t.row(&[
            item.to_string(),
            f(power.value(), 2),
            format!("{:.2}%", r.breakdown.share(item) * 100.0),
        ]);
    }
    t.row(&["TOTAL".into(), f(r.total_w * 1e3, 1), "100%".into()]);
    let mut out = t.render();
    out.push_str(&format!(
        "\nSteady state (weights resident, non-volatile GST): {:.2} W \
         -> {:.1}% below the {:.2} W tuning burst\n",
        r.steady_w,
        r.savings * 100.0,
        r.total_w
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_arch::power::items;

    #[test]
    fn totals_match_table_iii() {
        let r = run();
        assert!((r.total_w - 0.67).abs() < 0.01, "total {}", r.total_w);
        assert!((r.steady_w - 0.11).abs() < 0.01, "steady {}", r.steady_w);
        assert!((r.savings - 0.8334).abs() < 0.01, "savings {}", r.savings);
    }

    #[test]
    fn tuning_dominates() {
        let r = run();
        let ranked = r.breakdown.ranked();
        assert_eq!(ranked[0].0, items::GST_TUNING);
    }

    #[test]
    fn render_lists_every_component() {
        let text = render();
        for item in
            [items::LDSU, items::EO_LASER, items::GST_TUNING, items::GST_READ, items::ACT_RESET]
        {
            assert!(text.contains(item), "missing {item}");
        }
        assert!(text.contains("Steady state"));
    }
}
