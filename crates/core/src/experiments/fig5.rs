//! Fig. 5 — Trident chip area breakdown by component (44 PEs).

use crate::report::{f, TextTable};
use trident_arch::area::AreaModel;
use trident_arch::config::TridentConfig;

/// One component's chip area.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Component name.
    pub component: String,
    /// Whole-chip area in mm².
    pub area_mm2: f64,
    /// Share of the total, as a fraction.
    pub share: f64,
}

/// The area breakdown, largest first, plus the chip total.
pub fn run() -> (Vec<Row>, f64) {
    let model = AreaModel::new(&TridentConfig::paper());
    let total = model.chip_area().mm2();
    let mut rows: Vec<Row> = model
        .chip_breakdown()
        .into_iter()
        .map(|(component, area)| Row {
            component: component.to_string(),
            area_mm2: area.mm2(),
            share: area.mm2() / total,
        })
        .collect();
    rows.sort_by(|a, b| b.area_mm2.total_cmp(&a.area_mm2));
    (rows, total)
}

/// Render Fig. 5's data.
pub fn render() -> String {
    let (rows, total) = run();
    let mut t = TextTable::new(
        "Fig. 5: Trident Chip Area Breakdown by Component (44 PEs)",
        &["Component", "Area (mm^2)", "Share"],
    );
    for row in &rows {
        t.row(&[
            row.component.clone(),
            f(row.area_mm2, 2),
            format!("{:.2}%", row.share * 100.0),
        ]);
    }
    t.row(&["TOTAL".into(), f(total, 1), "100%".into()]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_matches_section_iv() {
        let (_, total) = run();
        assert!((total - 604.6).abs() < 15.0, "chip total {total} mm^2");
    }

    #[test]
    fn tia_is_the_largest_component() {
        let (rows, _) = run();
        assert_eq!(rows[0].component, "TIA", "Fig. 5: TIAs dominate");
        assert!(rows[0].share > 0.5);
    }

    #[test]
    fn shares_sum_to_one() {
        let (rows, _) = run();
        let sum: f64 = rows.iter().map(|r| r.share).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_has_total() {
        assert!(render().contains("TOTAL"));
    }
}
