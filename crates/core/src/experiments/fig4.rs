//! Fig. 4 — total inference energy of the four photonic accelerators on
//! the five CNN models, all scaled to 30 W.

use crate::report::{f, TextTable};
use trident_baselines::photonic::{all_photonic, PhotonicAccelerator};
use trident_workload::zoo;

/// One model's energies across the photonic designs, in millijoules.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// `(accelerator name, energy mJ)` in Fig. 4 order
    /// (DEAP-CNN, CrossLight, PIXEL, Trident).
    pub energies: Vec<(String, f64)>,
}

impl Row {
    /// Energy of a named accelerator. A name absent from the row yields
    /// NaN, which poisons any roll-up loudly instead of aborting.
    pub fn energy_of(&self, name: &str) -> f64 {
        self.energies.iter().find(|(n, _)| n == name).map(|&(_, e)| e).unwrap_or(f64::NAN)
    }
}

/// Energy of each photonic design on each model.
pub fn run() -> Vec<Row> {
    let accels: Vec<PhotonicAccelerator> = all_photonic();
    zoo::paper_models()
        .into_iter()
        .map(|model| Row {
            model: model.name.clone(),
            energies: accels
                .iter()
                .map(|a| {
                    use trident_baselines::traits::AcceleratorModel;
                    (a.name().to_string(), a.energy_per_inference_mj(&model))
                })
                .collect(),
        })
        .collect()
}

/// Per-baseline average energy ratio vs Trident (the paper's headline
/// percentages: +16.4% DEAP, +43.5% CrossLight, +43.4% PIXEL).
pub fn average_ratios(rows: &[Row]) -> Vec<(String, f64)> {
    let names: Vec<String> =
        rows[0].energies.iter().map(|(n, _)| n.clone()).filter(|n| n != "Trident").collect();
    names
        .into_iter()
        .map(|name| {
            let avg = rows
                .iter()
                .map(|r| r.energy_of(&name) / r.energy_of("Trident"))
                .sum::<f64>()
                / rows.len() as f64;
            (name, avg)
        })
        .collect()
}

/// Render Fig. 4's data.
pub fn render() -> String {
    let rows = run();
    let accel_names: Vec<String> = rows[0].energies.iter().map(|(n, _)| n.clone()).collect();
    let mut headers = vec!["Model"];
    let name_refs: Vec<&str> = accel_names.iter().map(String::as_str).collect();
    headers.extend(name_refs.iter());
    let mut t = TextTable::new(
        "Fig. 4: Photonic Accelerators Total Energy per Inference (mJ)",
        &headers,
    );
    for row in &rows {
        let mut cells = vec![row.model.clone()];
        cells.extend(row.energies.iter().map(|(_, e)| f(*e, 2)));
        t.row(&cells);
    }
    let mut out = t.render();
    out.push_str("\nAverage energy vs Trident (paper: DEAP +16.4%, CrossLight +43.5%, PIXEL +43.4%):\n");
    for (name, ratio) in average_ratios(&rows) {
        out.push_str(&format!("  {name:<12} {:.2}x Trident\n", ratio));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trident_is_cheapest_on_every_model() {
        for row in run() {
            let trident = row.energy_of("Trident");
            for (name, energy) in &row.energies {
                if name != "Trident" {
                    assert!(
                        trident < *energy,
                        "{}: Trident {trident} mJ vs {name} {energy} mJ",
                        row.model
                    );
                }
            }
        }
    }

    #[test]
    fn energy_tracks_model_size() {
        let rows = run();
        let by = |m: &str| {
            rows.iter().find(|r| r.model == m).unwrap().energy_of("Trident")
        };
        assert!(by("VGG-16") > by("ResNet-50"));
        assert!(by("ResNet-50") > by("GoogleNet"));
        assert!(by("GoogleNet") > by("MobileNetV2"));
    }

    #[test]
    fn deap_has_the_smallest_average_gap() {
        let ratios = average_ratios(&run());
        let get = |n: &str| ratios.iter().find(|(name, _)| name == n).unwrap().1;
        assert!(get("DEAP-CNN") < get("CrossLight"));
        assert!(get("DEAP-CNN") < get("PIXEL"));
        assert!(get("DEAP-CNN") > 1.0, "every baseline costs more than Trident");
    }

    #[test]
    fn render_includes_averages() {
        let text = render();
        assert!(text.contains("Average energy vs Trident"));
        assert!(text.contains("DEAP-CNN"));
    }
}
