//! Fig. 3 — the output function of the GST activation cell at 1553.4 nm.

use crate::report::TextTable;
use trident_pcm::activation::{fig3_curve, ActivationCellParams};

/// The sampled transfer curve: `(input pulse energy pJ, output pJ)`.
pub fn run(max_pj: f64, samples: usize) -> Vec<(f64, f64)> {
    fig3_curve(&ActivationCellParams::default(), max_pj, samples)
}

/// Render the curve as a CSV-style series plus an ASCII sketch.
pub fn render() -> String {
    let params = ActivationCellParams::default();
    let curve = run(1000.0, 51);
    let mut t = TextTable::new(
        format!(
            "Fig. 3: GST Activation Cell Output Function ({} threshold, slope {})",
            params.threshold, params.slope
        ),
        &["input_pj", "output_pj"],
    );
    for (x, y) in &curve {
        t.row(&[format!("{x:.1}"), format!("{y:.2}")]);
    }
    let mut out = t.to_csv();
    out.push('\n');
    // ASCII sketch: 21 columns over the range.
    let max_out = curve.iter().map(|&(_, y)| y).fold(0.0, f64::max).max(1e-9);
    out.push_str("sketch (input left to right, * = output level):\n");
    for &(x, y) in curve.iter().step_by(5) {
        let bar = "*".repeat((y / max_out * 40.0).round() as usize);
        out.push_str(&format!("{x:7.1} pJ |{bar}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_flat_then_linear() {
        let curve = run(1000.0, 201);
        let threshold = 430.0;
        for &(x, y) in &curve {
            if x < threshold {
                assert_eq!(y, 0.0, "below threshold at {x}");
            } else {
                assert!((y - 0.34 * (x - threshold)).abs() < 1e-9, "above threshold at {x}");
            }
        }
    }

    #[test]
    fn render_emits_csv_and_sketch() {
        let text = render();
        assert!(text.contains("input_pj,output_pj"));
        assert!(text.contains("sketch"));
        assert!(text.contains('*'));
    }
}
