//! Table IV — performance of Trident vs the electronic edge accelerators.

use crate::report::{f, TextTable};
use trident_baselines::electronic::all_electronic;
use trident_baselines::photonic::trident_photonic;
use trident_baselines::traits::AcceleratorModel;

/// One accelerator's Table IV row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Accelerator name.
    pub name: String,
    /// Peak TOPS.
    pub tops: f64,
    /// Power draw in watts.
    pub watts: f64,
    /// TOPS per watt.
    pub tops_per_watt: f64,
    /// Training capability.
    pub supports_training: bool,
}

fn row_of(a: &dyn AcceleratorModel) -> Row {
    Row {
        name: a.name().to_string(),
        tops: a.peak_tops(),
        watts: a.power_w(),
        tops_per_watt: a.tops_per_watt(),
        supports_training: a.supports_training(),
    }
}

/// The four Table IV accelerators, paper order.
pub fn run() -> Vec<Row> {
    let mut rows: Vec<Row> = all_electronic().iter().map(|a| row_of(a)).collect();
    rows.push(row_of(&trident_photonic()));
    rows
}

/// Render Table IV.
pub fn render() -> String {
    let mut t = TextTable::new(
        "Table IV: Performance of Trident vs. Electronic Accelerators",
        &["Accelerator", "TOPS", "Watts", "TOPS per W", "Training"],
    );
    for row in run() {
        t.row(&[
            row.name.clone(),
            f(row.tops, 1),
            f(row.watts, 0),
            f(row.tops_per_watt, 2),
            if row.supports_training { "Yes".into() } else { "No".into() },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_name(rows: &[Row], name: &str) -> Row {
        rows.iter().find(|r| r.name == name).cloned().unwrap_or_else(|| {
            panic!("missing row {name}");
        })
    }

    #[test]
    fn table_iv_rows_match_paper() {
        let rows = run();
        assert_eq!(rows.len(), 4);
        let xavier = by_name(&rows, "NVIDIA AGX Xavier");
        assert_eq!(xavier.tops, 32.0);
        assert_eq!(xavier.watts, 30.0);
        assert!(xavier.supports_training);

        let tb96 = by_name(&rows, "Bearkey TB96-AI");
        assert_eq!(tb96.tops, 3.0);
        assert!(!tb96.supports_training);

        let coral = by_name(&rows, "Google Coral");
        assert!(!coral.supports_training);

        let trident = by_name(&rows, "Trident");
        assert!((trident.tops - 7.8).abs() < 0.1, "Trident TOPS {}", trident.tops);
        assert_eq!(trident.watts, 30.0);
        assert!(trident.supports_training);
    }

    #[test]
    fn tops_per_watt_ordering_matches_paper() {
        // Xavier > Trident > Coral > TB96 (1.1 > 0.29/0.26 > 0.15);
        // Trident and Coral are within rounding of each other in the
        // paper (0.29 vs 0.26) — assert Trident ≥ Coral − ε.
        let rows = run();
        let tpw = |n: &str| by_name(&rows, n).tops_per_watt;
        assert!(tpw("NVIDIA AGX Xavier") > tpw("Trident"));
        assert!(tpw("Trident") >= tpw("Google Coral") - 0.02);
        assert!(tpw("Google Coral") > tpw("Bearkey TB96-AI"));
    }

    #[test]
    fn trident_beats_tb96_energy_efficiency_by_large_margin() {
        // §V-A: Trident outperforms the TB96-AI in TOPS/W by 93.3%.
        let rows = run();
        let trident = by_name(&rows, "Trident").tops_per_watt;
        let tb96 = by_name(&rows, "Bearkey TB96-AI").tops_per_watt;
        let improvement = trident / tb96 - 1.0;
        assert!(
            improvement > 0.5,
            "Trident should beat TB96 decisively, got {:.1}%",
            improvement * 100.0
        );
    }

    #[test]
    fn render_has_all_rows() {
        let text = render();
        for name in ["NVIDIA AGX Xavier", "Bearkey TB96-AI", "Google Coral", "Trident"] {
            assert!(text.contains(name), "missing {name}");
        }
    }
}
