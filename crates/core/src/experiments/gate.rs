//! The reproduction gate: every headline claim of the paper checked in
//! one pass, with a machine-readable verdict.
//!
//! This is the same contract the test suite enforces, packaged for CI and
//! for users who want a one-command answer to "does this reproduction
//! still hold?" — `cargo run -p trident-bench --bin verify_repro` exits
//! non-zero if any claim fails.

use crate::experiments::{fig5, fig6, table3, table5};
use crate::report::TextTable;
use trident_baselines::electronic::{bearkey_tb96, google_coral, nvidia_agx_xavier};
use trident_baselines::photonic::{crosslight, deap_cnn, pixel, trident_photonic};
use trident_baselines::traits::AcceleratorModel;
use trident_workload::zoo;

/// One checked claim.
#[derive(Debug, Clone, PartialEq)]
pub struct Claim {
    /// Where in the paper the claim lives.
    pub source: &'static str,
    /// What is being checked.
    pub statement: &'static str,
    /// The measured value, formatted.
    pub measured: String,
    /// Verdict.
    pub holds: bool,
}

fn claim(source: &'static str, statement: &'static str, measured: String, holds: bool) -> Claim {
    Claim { source, statement, measured, holds }
}

/// Run every gate check.
pub fn run() -> Vec<Claim> {
    let mut claims = Vec::new();

    // Table III.
    let t3 = table3::run();
    claims.push(claim(
        "Table III",
        "PE worst-case power is 0.67 W",
        format!("{:.3} W", t3.total_w),
        (t3.total_w - 0.67).abs() < 0.01,
    ));
    claims.push(claim(
        "Table III",
        "GST tuning is 83.34% of PE power",
        format!("{:.2}%", t3.breakdown.share(trident_arch::power::items::GST_TUNING) * 100.0),
        (t3.breakdown.share(trident_arch::power::items::GST_TUNING) - 0.8334).abs() < 0.005,
    ));
    claims.push(claim(
        "Section IV",
        "steady-state PE power is 0.11 W",
        format!("{:.3} W", t3.steady_w),
        (t3.steady_w - 0.11).abs() < 0.01,
    ));

    // Section IV scale.
    let trident = trident_photonic();
    claims.push(claim(
        "Section IV",
        "30 W admits 44 PEs of 256 MRRs",
        format!("{} PEs x {} MRRs", trident.num_pes(), trident.perf().config.mrrs_per_pe()),
        trident.num_pes() == 44 && trident.perf().config.mrrs_per_pe() == 256,
    ));
    claims.push(claim(
        "Section V-A",
        "peak throughput is 7.8 TOPS",
        format!("{:.2} TOPS", trident.peak_tops()),
        (trident.peak_tops() - 7.8).abs() < 0.05,
    ));

    // Fig. 5.
    let (area_rows, area_total) = fig5::run();
    claims.push(claim(
        "Section IV / Fig. 5",
        "chip area ~604.6 mm², under one square inch, TIA-dominated",
        format!("{:.1} mm², top: {}", area_total, area_rows[0].component),
        (area_total - 604.6).abs() < 15.0 && area_total < 645.16 && area_rows[0].component == "TIA",
    ));

    // Fig. 4 ordering.
    let mut energy_ok = true;
    for model in zoo::paper_models() {
        let t = trident.energy_per_inference_mj(&model);
        for b in [deap_cnn(), crosslight(), pixel()] {
            energy_ok &= t < b.energy_per_inference_mj(&model);
        }
    }
    claims.push(claim(
        "Fig. 4",
        "Trident is the most energy-efficient photonic design on all five CNNs",
        if energy_ok { "all 15 comparisons won".into() } else { "a comparison lost".into() },
        energy_ok,
    ));

    // Fig. 6 orderings.
    let rows = fig6::run();
    let xavier = fig6::average_speedup(&rows, "NVIDIA AGX Xavier");
    let coral = fig6::average_speedup(&rows, "Google Coral");
    let tb96 = fig6::average_speedup(&rows, "Bearkey TB96-AI");
    claims.push(claim(
        "Fig. 6",
        "average speedups: Coral > TB96 > Xavier > 1 (paper: 15.1/6.9/2.08)",
        format!("{coral:.1}x / {tb96:.1}x / {xavier:.2}x"),
        coral > tb96 && tb96 > xavier && xavier > 1.0,
    ));

    // Table IV orderings.
    claims.push(claim(
        "Table IV",
        "TOPS/W: Xavier > Trident ≈ Coral > TB96; only Xavier and Trident train",
        format!(
            "{:.2} / {:.2} / {:.2} / {:.2}",
            nvidia_agx_xavier().tops_per_watt(),
            trident.tops_per_watt(),
            google_coral().tops_per_watt(),
            bearkey_tb96().tops_per_watt()
        ),
        nvidia_agx_xavier().tops_per_watt() > trident.tops_per_watt()
            && trident.tops_per_watt() > bearkey_tb96().tops_per_watt()
            && trident.supports_training()
            && !google_coral().supports_training(),
    ));

    // Table V crossover.
    let t5 = table5::run();
    let losses: Vec<&str> =
        t5.iter().filter(|r| r.percent_change > 0.0).map(|r| r.model.as_str()).collect();
    claims.push(claim(
        "Table V",
        "Trident wins training on 3 of 4 models; GoogleNet is the only loss",
        format!("losses: {losses:?}"),
        losses == vec!["GoogleNet"],
    ));

    // §II-B / crosstalk.
    {
        use trident_photonics::crosstalk::{analyze_bank, effective_bit_resolution, BankOperatingPoint};
        use trident_photonics::mrr::{AddDropMrr, MrrGeometry};
        use trident_photonics::units::Wavelength;
        use trident_photonics::wdm::WdmGrid;
        let grid = WdmGrid::c_band(16);
        let ring = AddDropMrr::new(MrrGeometry::weight_bank(), Wavelength::from_nm(1550.0));
        let gst = analyze_bank(&grid, &ring, &BankOperatingPoint::gst(), 1.0);
        let thermal = analyze_bank(&grid, &ring, &BankOperatingPoint::thermal(), 1.0);
        let gst_bits = effective_bit_resolution(&gst, 8);
        let thermal_bits = effective_bit_resolution(&thermal, 8);
        claims.push(claim(
            "Section II-B",
            "GST banks sustain 8 usable bits; thermally modulated banks stop at 6",
            format!("GST {gst_bits} bits, thermal {thermal_bits} bits"),
            gst_bits == 8 && thermal_bits == 6,
        ));
    }

    claims
}

/// True when every claim holds.
pub fn all_hold(claims: &[Claim]) -> bool {
    claims.iter().all(|c| c.holds)
}

/// Render the gate as a table.
pub fn render() -> (String, bool) {
    let claims = run();
    let ok = all_hold(&claims);
    let mut t = TextTable::new(
        "Reproduction gate: paper claims vs this build",
        &["Source", "Claim", "Measured", "Verdict"],
    );
    for c in &claims {
        t.row(&[
            c.source.to_string(),
            c.statement.to_string(),
            c.measured.clone(),
            if c.holds { "PASS".into() } else { "FAIL".into() },
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\n{} of {} claims hold -> {}\n",
        claims.iter().filter(|c| c.holds).count(),
        claims.len(),
        if ok { "REPRODUCTION OK" } else { "REPRODUCTION BROKEN" }
    ));
    (out, ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_gate_claim_holds() {
        for c in run() {
            assert!(c.holds, "{} — {}: measured {}", c.source, c.statement, c.measured);
        }
    }

    #[test]
    fn gate_has_meaningful_coverage() {
        let claims = run();
        assert!(claims.len() >= 10, "gate should check at least ten claims");
        let sources: std::collections::BTreeSet<_> =
            claims.iter().map(|c| c.source).collect();
        assert!(sources.len() >= 6, "claims should span the paper's sections");
    }

    #[test]
    fn render_reports_ok() {
        let (text, ok) = render();
        assert!(ok);
        assert!(text.contains("REPRODUCTION OK"));
        assert!(!text.contains("FAIL"));
    }
}
