//! # trident
//!
//! Unified public API for the Trident reproduction — a simulation study of
//! *"PCM Enabled Low-Power Photonic Accelerator for Inference and Training
//! on Edge Devices"* (Curry, Louri, Karanth, Bunescu — IPDPS 2024).
//!
//! This crate re-exports the substrate crates and adds the
//! [`experiments`] module: one runner per table and figure of the paper's
//! evaluation, each returning typed rows that the benchmark binaries
//! print, the integration tests assert on, and downstream users can
//! consume programmatically.
//!
//! ## Quick start
//!
//! ```
//! use trident::experiments::table4;
//!
//! // Regenerate Table IV (TOPS / W / TOPS-per-W / training support).
//! let rows = table4::run();
//! let trident = rows.iter().find(|r| r.name == "Trident").unwrap();
//! assert!(trident.supports_training);
//! assert!(trident.tops > 7.0);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`photonics`] | WDM, microrings, detectors, tuning methods, noise |
//! | [`pcm`] | GST cells, PCM-MRR weights, activation cell, LDSU |
//! | [`nn`] | tensors, layers, float backprop reference, quantization |
//! | [`workload`] | the five CNN topologies + weight-stationary dataflow |
//! | [`arch`] | Trident PEs, in-situ training engine, perf/power/area |
//! | [`baselines`] | DEAP-CNN, CrossLight, PIXEL, Xavier, TB96-AI, Coral |
//! | [`obs`] | spans, typed counters, Perfetto/JSON exporters ([`trace`]) |

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_lossless))]

pub use trident_arch as arch;
pub use trident_baselines as baselines;
pub use trident_nn as nn;
pub use trident_obs as obs;
pub use trident_pcm as pcm;
pub use trident_photonics as photonics;
pub use trident_serve as serve;
pub use trident_workload as workload;

pub mod experiments;
pub mod report;
pub mod trace;

pub use arch::{PhotonicMlp, TridentConfig, TridentPerfModel};
pub use baselines::AcceleratorModel;

/// Everything a typical downstream user needs, in one import.
pub mod prelude {
    pub use crate::arch::config::TridentConfig;
    pub use crate::arch::engine::{EngineOptions, PhotonicMlp};
    pub use crate::arch::mapper::{plan, DeploymentPlan};
    pub use crate::arch::pe::ProcessingElement;
    pub use crate::arch::perf::TridentPerfModel;
    pub use crate::arch::pipeline::simulate as simulate_pipeline;
    pub use crate::baselines::electronic::all_electronic;
    pub use crate::baselines::photonic::{all_photonic, trident_photonic};
    pub use crate::baselines::traits::AcceleratorModel;
    pub use crate::workload::model::{ModelBuilder, ModelSpec};
    pub use crate::workload::zoo;
}
