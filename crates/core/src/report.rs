//! Plain-text table rendering for the experiment binaries.
//!
//! No dependency on a serialization format: the binaries print aligned
//! text tables for humans plus CSV lines for plotting scripts.

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of string slices.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text block.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (headers + rows, comma-separated, quotes on commas).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `prec` decimals.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Format a percentage with sign, one decimal.
pub fn pct(v: f64) -> String {
    format!("{:+.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.row_strs(&["a", "1"]);
        t.row_strs(&["longer-name", "2"]);
        let r = t.render();
        assert!(r.contains("== Demo =="));
        assert!(r.contains("longer-name"));
        let lines: Vec<&str> = r.lines().collect();
        // header, separator, two rows, plus title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic]
    fn rejects_wrong_width() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row_strs(&["only-one"]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new("x", &["a"]);
        t.row_strs(&["hello, world"]);
        assert!(t.to_csv().contains("\"hello, world\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(-0.085), "-8.5%");
        assert_eq!(pct(0.106), "+10.6%");
    }
}
