//! Quickstart: program a photonic PE, run a matrix-vector product through
//! the ring physics, fire the GST activation, and read the energy bill.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```


#![allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_lossless)]
use trident::arch::pe::ProcessingElement;
use trident::pcm::activation::GstRelu;

fn main() {
    println!("Trident quickstart: one photonic processing element\n");

    // A 4×4 PE: 16 PCM-MRR weight cells, one BPD+TIA+LDSU+activation per
    // row. `None` disables receiver noise (pass a seed to enable it).
    let mut pe = ProcessingElement::new(4, 4, None);

    // Program a weight matrix. Each weight is written into a GST cell by
    // optical pulses through the calibrated weight LUT (8-bit levels).
    #[rustfmt::skip]
    let weights = [
        0.9, -0.3,  0.0,  0.5,
       -0.7,  0.8,  0.2, -0.1,
        0.1,  0.1,  0.1,  0.1,
        1.0, -1.0,  1.0, -1.0,
    ];
    pe.program(&weights);
    println!("programmed 16 weights (8-bit PCM quantization)");

    // Inference: encode an input vector on the WDM comb and detect the
    // per-row dot products on the balanced photodetectors.
    let x = [1.0, 0.5, 0.25, 0.75];
    let h = pe.mvm_unsigned(&x);
    println!("\ninput  x = {x:?}");
    for (r, v) in h.iter().enumerate() {
        let exact: f64 = (0..4).map(|c| weights[r * 4 + c] * x[c]).sum();
        println!("row {r}: photonic dot = {v:+.4}   exact = {exact:+.4}");
    }

    // Photonic activation: the GST cell fires when a row's weighted-sum
    // pulse exceeds the 430 pJ threshold; the LDSU latches f'(h).
    let relu = GstRelu { threshold: 0.43, slope: 0.34 };
    let y = pe.latch_and_activate(&h);
    println!("\nGST activation (threshold 0.43, slope 0.34):");
    for (r, (hv, yv)) in h.iter().zip(&y).enumerate() {
        println!(
            "row {r}: h = {hv:+.4} -> y = {yv:+.4} (reference {:+.4}), f'(h) = {}",
            relu.forward(*hv),
            pe.stored_derivative(r)
        );
    }

    // Every optical event was charged to the PE's energy ledger.
    println!("\nenergy ledger:\n{}", pe.energy());
    println!("simulated time: {:.1}", pe.elapsed());
}
