//! A convolutional network running end-to-end on simulated photonic
//! hardware: conv filters in an MRR weight bank (im2col streaming), GST
//! activation per output position, electronic max-pooling, a photonic
//! dense head — trained in situ.
//!
//! ```sh
//! cargo run --release --example photonic_cnn [per_class] [epochs]
//! ```


#![allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_lossless)]
use trident::arch::conv_engine::PhotonicCnn;
use trident::nn::data::synthetic_digits;

fn main() {
    let mut args = std::env::args().skip(1);
    let per_class: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let epochs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);

    println!("Photonic CNN on the synthetic digit task");
    println!("(conv 6@3x3 -> GST activation -> 2x2 maxpool -> dense 10)\n");

    let data = synthetic_digits(per_class, 0.05, 13);
    let images: Vec<Vec<f64>> = (0..data.len())
        .map(|i| data.inputs.row(i).iter().map(|&v| v as f64).collect())
        .collect();

    let mut cnn = PhotonicCnn::new(1, 8, 8, 6, 3, 10, 5, 8);
    let (ch, cw) = cnn.conv_hw();
    let (ph, pw) = cnn.pool_hw();
    println!(
        "feature path: 1x8x8 -> conv {ch}x{cw}x6 -> pool {ph}x{pw}x6 -> {} features -> 10 classes",
        cnn.feature_count()
    );
    println!("initial accuracy: {:.1}%\n", cnn.accuracy(&images, &data.labels) * 100.0);

    let history = cnn.train(&images, &data.labels, 0.1, epochs);
    for (e, loss) in history.iter().enumerate() {
        if e % 2 == 0 || e + 1 == history.len() {
            println!("epoch {e:>3}: loss {loss:.4}");
        }
    }
    println!(
        "\nfinal accuracy: {:.1}%",
        cnn.accuracy(&images, &data.labels) * 100.0
    );
    println!(
        "total optical energy: {:.2} uJ",
        cnn.total_energy().value() / 1e6
    );
    println!(
        "\nEvery MAC — conv patches, dense head, gradient outer products —\n\
         went through the simulated MRR weight banks; only pooling, loss\n\
         gradients and weight bookkeeping are electronic, as in the paper."
    );
}
