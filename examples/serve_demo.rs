//! Serving demo: a 3-replica Trident fleet under Poisson load takes a
//! dead-ring fault on one replica mid-run and keeps serving — the
//! router's least-loaded dispatch spreads work over the survivors and
//! the healthy chips' accuracy carries the fleet.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```
//!
//! Prints the healthy-baseline and faulted goodput reports side by side
//! plus the per-replica ledgers, so the degradation (and its grace) is
//! visible in one screen.


#![allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_lossless)]
use trident::arch::engine::{EngineOptions, PhotonicMlp};
use trident::arch::faults::FaultPlan;
use trident::nn::data::synthetic_digits;
use trident::serve::sim::FaultEvent;
use trident::serve::{ArrivalProcess, ReplicaProfile, ServeConfig, ServeReport, Sharding};

const DIMS: [usize; 3] = [64, 16, 10];

/// The request sample pool: `(input, label)` pairs.
type Pool = Vec<(Vec<f64>, usize)>;

/// Train the shared digit model once on an ideal engine and return its
/// deployable weights plus the request sample pool.
fn pretrained_and_pool() -> (Vec<Vec<f64>>, Pool) {
    let data = synthetic_digits(4, 0.05, 42);
    let xs: Vec<Vec<f64>> = (0..data.len())
        .map(|i| data.inputs.row(i).iter().map(|&v| f64::from(v)).collect())
        .collect();
    let mut ideal =
        PhotonicMlp::with_options(&DIMS, EngineOptions { seed: 11, ..Default::default() });
    ideal.train(&xs, &data.labels, 0.1, 12);
    let pool = xs.into_iter().zip(data.labels.iter().copied()).collect();
    (ideal.snapshot_weights(), pool)
}

fn config(scenario: &str, fault_events: Vec<FaultEvent>) -> ServeConfig {
    let (weights, pool) = pretrained_and_pool();
    ServeConfig {
        scenario: scenario.to_string(),
        seed: 2024,
        dims: DIMS.to_vec(),
        engine: EngineOptions::default(),
        pretrained: Some(weights),
        dataset: pool,
        replicas: (0..3)
            .map(|i| ReplicaProfile {
                variation_seed: 100 + i,
                noise_seed: None,
                laser_droop: 0.0,
                pre_age_hours: 0.0,
            })
            .collect(),
        sharding: Sharding::ReplicaParallel,
        batch_max: 8,
        linger_ns: 5_000,
        slo_ns: 30_000,
        est_ns_per_item_init: 4_000,
        arrivals: ArrivalProcess::Poisson { mean_interarrival_ns: 15_000 },
        requests: 300,
        fault_events,
    }
}

fn print_report(r: &ServeReport) {
    println!("scenario: {}", r.scenario);
    println!(
        "  served {}/{} ({} shed), goodput {:.0} req/s, p50 {:.1} us, p99 {:.1} us",
        r.served,
        r.offered,
        r.shed,
        r.goodput_rps(),
        r.p50_ns as f64 / 1000.0,
        r.p99_ns as f64 / 1000.0,
    );
    println!(
        "  accuracy over served: {:.1}%   faults applied: {}",
        r.served_accuracy() * 100.0,
        r.faults_applied
    );
    for rep in &r.replicas {
        println!(
            "  replica {}: {} requests, {} batches, {:.1}% correct, {} masked rings, {:.0} nJ",
            rep.id,
            rep.requests,
            rep.batches,
            if rep.requests == 0 { 0.0 } else { 100.0 * rep.correct as f64 / rep.requests as f64 },
            rep.masked_rings,
            rep.energy_pj / 1000.0,
        );
    }
}

fn main() {
    println!("Trident fleet serving demo: dead-ring fault mid-run\n");

    let healthy = trident::serve::sim::run(&config("healthy", Vec::new())).unwrap();

    // A third of replica 1's microrings delaminate mid-run: masked off the
    // bus, remapped where spares allow, and served around otherwise.
    let strike = FaultEvent {
        at_ns: healthy.horizon_ns / 3,
        replica: 1,
        plan: FaultPlan { dead_rings: 0.33, seed: 5, ..Default::default() },
    };
    let faulted = trident::serve::sim::run(&config("dead-rings@replica-1", vec![strike])).unwrap();

    print_report(&healthy);
    println!();
    print_report(&faulted);

    let retained = if healthy.goodput_rps() > 0.0 {
        100.0 * faulted.goodput_rps() / healthy.goodput_rps()
    } else {
        0.0
    };
    println!(
        "\ngraceful degradation: fleet retains {:.0}% of healthy goodput and {:.1}% accuracy \
         with replica 1 wounded",
        retained,
        faulted.served_accuracy() * 100.0,
    );
}
