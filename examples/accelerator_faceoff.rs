//! Accelerator face-off on a *custom* network: build your own topology
//! with the workload builder and see how every accelerator handles it —
//! the downstream-user workflow the library is designed for.
//!
//! ```sh
//! cargo run --release --example accelerator_faceoff
//! ```


#![allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_lossless)]
use trident::baselines::electronic::all_electronic;
use trident::baselines::photonic::all_photonic;
use trident::baselines::traits::AcceleratorModel;
use trident::workload::layer::{LayerKind, TensorShape};
use trident::workload::model::ModelBuilder;

fn main() {
    // A compact edge-vision network: something a user might actually
    // deploy on-device — small stem, depthwise blocks, tiny classifier.
    let mut b = ModelBuilder::new("EdgeVisionNet", TensorShape::new(3, 96, 96));
    b.conv("stem", 16, 3, 2, 1);
    for (i, (c, s)) in [(32, 2), (64, 2), (96, 1), (128, 2)].iter().enumerate() {
        let hidden = b.current_shape().c * 4;
        b.conv(format!("b{i}_expand"), hidden, 1, 1, 0)
            .conv_grouped(format!("b{i}_dw"), hidden, 3, *s, 1, hidden)
            .conv(format!("b{i}_project"), *c, 1, 1, 0);
    }
    b.push("gap", LayerKind::GlobalAvgPool).dense("classifier", 20);
    let model = b.build_branched();

    println!(
        "{}: {:.1} MMACs, {:.2}M params, {} MAC layers\n",
        model.name,
        model.total_macs() as f64 / 1e6,
        model.total_params() as f64 / 1e6,
        model.mac_layer_count()
    );

    println!(
        "{:<20} {:>12} {:>14} {:>12}",
        "accelerator", "inf/s", "mJ/inference", "peak TOPS/W"
    );
    for accel in all_electronic() {
        println!(
            "{:<20} {:>12.0} {:>14.3} {:>12.2}  (roofline estimate)",
            accel.name(),
            accel.inferences_per_second(&model),
            accel.energy_per_inference_mj(&model),
            accel.tops_per_watt()
        );
    }
    for accel in all_photonic() {
        println!(
            "{:<20} {:>12.0} {:>14.3} {:>12.2}  ({} PEs, {}-bit weights)",
            accel.name(),
            accel.inferences_per_second(&model),
            accel.energy_per_inference_mj(&model),
            accel.tops_per_watt(),
            accel.num_pes(),
            accel.weight_bits()
        );
    }

    println!(
        "\nOnly accelerators with >= 8-bit weight paths can fine-tune this\n\
         model on-device: Trident (photonic, 8-bit GST) and the Xavier."
    );
}
