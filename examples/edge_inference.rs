//! Edge inference study: run the paper's five CNNs through the Trident
//! performance model and compare against all six baseline accelerators —
//! a condensed Fig. 4 + Fig. 6 in one run, with a per-layer drill-down.
//!
//! ```sh
//! cargo run --release --example edge_inference [model]
//! ```
//!
//! `model` (optional): one of `alexnet`, `vgg16`, `googlenet`,
//! `mobilenetv2`, `resnet50` to drill into; default prints the summary.


#![allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_lossless)]
use trident::baselines::electronic::all_electronic;
use trident::baselines::photonic::{all_photonic, trident_photonic};
use trident::baselines::traits::AcceleratorModel;
use trident::workload::model::ModelSpec;
use trident::workload::zoo;

fn pick(name: &str) -> Option<ModelSpec> {
    match name.to_ascii_lowercase().as_str() {
        "alexnet" => Some(zoo::alexnet()),
        "vgg16" | "vgg-16" => Some(zoo::vgg16()),
        "googlenet" => Some(zoo::googlenet()),
        "mobilenetv2" | "mobilenet" => Some(zoo::mobilenet_v2()),
        "resnet50" | "resnet-50" => Some(zoo::resnet50()),
        _ => None,
    }
}

fn summary() {
    println!("Edge accelerator face-off on the paper's five CNNs\n");
    let photonic = all_photonic();
    let electronic = all_electronic();

    for model in zoo::paper_models() {
        println!(
            "{} — {:.2} GMACs, {:.1}M params, {} MAC layers",
            model.name,
            model.total_macs() as f64 / 1e9,
            model.total_params() as f64 / 1e6,
            model.mac_layer_count()
        );
        for accel in &electronic {
            println!(
                "  {:<18} {:>9.0} inf/s   {:>8.2} mJ/inf",
                accel.name(),
                accel.inferences_per_second(&model),
                accel.energy_per_inference_mj(&model)
            );
        }
        for accel in &photonic {
            println!(
                "  {:<18} {:>9.0} inf/s   {:>8.2} mJ/inf   ({} PEs @ 30 W)",
                accel.name(),
                accel.inferences_per_second(&model),
                accel.energy_per_inference_mj(&model),
                accel.num_pes()
            );
        }
        println!();
    }
}

fn drill_down(model: &ModelSpec) {
    let trident = trident_photonic();
    let analysis = trident.analyze(model);
    println!(
        "Per-layer Trident analysis of {} ({} MAC layers)\n",
        model.name,
        analysis.layers.len()
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "layer", "latency (us)", "stream (us)", "tune (us)", "energy (uJ)"
    );
    for layer in &analysis.layers {
        println!(
            "{:<22} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            layer.name,
            layer.latency.micros(),
            layer.stream_latency.micros(),
            layer.tune_latency.micros(),
            layer.energy().value() / 1e6
        );
    }
    println!(
        "\nTOTAL: {:.3} ms/inference ({:.0} inf/s), {:.2} mJ/inference, \
         tuning share {:.1}%",
        analysis.latency().millis(),
        analysis.inferences_per_second(),
        analysis.energy_mj(),
        analysis.tuning_share() * 100.0
    );
}

fn main() {
    match std::env::args().nth(1) {
        Some(name) => match pick(&name) {
            Some(model) => drill_down(&model),
            None => {
                eprintln!(
                    "unknown model {name:?}; try alexnet, vgg16, googlenet, \
                     mobilenetv2 or resnet50"
                );
                std::process::exit(1);
            }
        },
        None => summary(),
    }
}
