//! Device exploration: sweep the GST activation cell and the PCM-MRR
//! weight cell across their operating ranges — the Fig. 3 transfer curve,
//! the weight-calibration curve, and the crosstalk/bit-resolution analysis
//! behind the paper's 8-vs-6-bit story.
//!
//! ```sh
//! cargo run --release --example activation_sweep
//! ```


#![allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_lossless)]
use trident::pcm::activation::{fig3_curve, ActivationCellParams};
use trident::pcm::gst::GstParameters;
use trident::pcm::weight::WeightLut;
use trident::photonics::crosstalk::{analyze_bank, effective_bit_resolution, BankOperatingPoint};
use trident::photonics::mrr::{AddDropMrr, MrrGeometry};
use trident::photonics::units::Wavelength;
use trident::photonics::wdm::WdmGrid;

fn main() {
    // 1. Fig. 3: the activation transfer curve.
    let params = ActivationCellParams::default();
    println!(
        "GST activation cell at {} (threshold {}, slope {}):",
        params.probe_wavelength, params.threshold, params.slope
    );
    for (x, y) in fig3_curve(&params, 1000.0, 11) {
        let bar = "#".repeat((y / 2.0) as usize);
        println!("  in {x:>6.1} pJ -> out {y:>6.1} pJ  {bar}");
    }

    // 2. The weight-calibration curve: GST level → crystallinity → weight.
    let ring = AddDropMrr::new(MrrGeometry::weight_bank(), Wavelength::from_nm(1550.0));
    let gst = GstParameters::default();
    let lut = WeightLut::build(&ring, &gst);
    println!(
        "\nPCM-MRR weight calibration ({} levels, optical scale {:.3}):",
        lut.levels(),
        lut.scale()
    );
    println!("  {:>5}  {:>13}  {:>8}", "level", "crystallinity", "weight");
    for level in (0..lut.levels()).step_by(32).chain([lut.levels() - 1]) {
        println!(
            "  {:>5}  {:>13.4}  {:>+8.4}",
            level,
            lut.crystallinity_at(level),
            lut.weight_at(level)
        );
    }
    println!(
        "  worst-case quantization error over [-1, 1]: {:.5} ({} of an LSB)",
        lut.max_quantization_error(4001),
        if lut.max_quantization_error(4001) <= 1.0 / 254.0 { "within half" } else { "more than half" }
    );

    // 3. Crosstalk: why GST banks reach 8 bits and thermal banks stop at 6.
    let grid = WdmGrid::c_band(16);
    println!("\nWeight-bank crosstalk on a 16-channel, 1.6 nm grid:");
    for (name, op) in [
        ("GST (fixed resonance)", BankOperatingPoint::gst()),
        ("thermal (±0.2 nm shift)", BankOperatingPoint::thermal()),
        ("hybrid (±0.1 nm shift)", BankOperatingPoint::hybrid()),
    ] {
        let report = analyze_bank(&grid, &ring, &op, 1.0);
        println!(
            "  {name:<26} leak {:.2e} -> effective {:.2e} ({:.1} dB) -> {} usable bits",
            report.optical_ratio,
            report.effective_ratio,
            report.sxr_db,
            effective_bit_resolution(&report, 8),
        );
    }
}
