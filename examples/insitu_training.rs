//! In-situ training demo: train a dense network for digit classification
//! entirely on simulated Trident hardware — forward MACs, gradient
//! vectors, and weight-update outer products all executed photonically
//! per Table II of the paper — and compare 8-bit (GST) against 6-bit
//! (thermal) weight resolution.
//!
//! ```sh
//! cargo run --release --example insitu_training [per_class] [epochs]
//! ```


#![allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_lossless)]
use trident::arch::engine::PhotonicMlp;
use trident::nn::data::synthetic_digits;

fn main() {
    let mut args = std::env::args().skip(1);
    let per_class: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let epochs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(15);

    println!("In-situ photonic training on the synthetic digit task");
    println!("({per_class} images/class, {epochs} epochs, 64-16-10 MLP)\n");

    let data = synthetic_digits(per_class, 0.05, 2024);
    let xs: Vec<Vec<f64>> = (0..data.len())
        .map(|i| data.inputs.row(i).iter().map(|&v| v as f64).collect())
        .collect();

    for (label, bits) in [("GST / 8-bit", 8u8), ("thermal / 6-bit", 6u8)] {
        let mut engine = PhotonicMlp::new(&[64, 16, 10], 16, 16, 7, None, bits);
        println!(
            "{label}: {} PEs allocated across {} layers",
            engine.pe_count(),
            engine.layer_count()
        );
        let outcome = engine.train(&xs, &data.labels, 0.1, epochs);
        for (e, loss) in outcome.loss_history.iter().enumerate() {
            if e % 3 == 0 || e + 1 == outcome.loss_history.len() {
                println!("  epoch {e:>3}: loss {loss:.4}");
            }
        }
        println!(
            "  final accuracy: {:.1}%",
            outcome.final_accuracy * 100.0
        );
        println!(
            "  optical energy: {:.2} uJ total, {:.2} uJ of GST programming \
             ({:.0}% of total)",
            outcome.total_energy.value() / 1e6,
            outcome.programming_energy.value() / 1e6,
            outcome.programming_energy / outcome.total_energy * 100.0
        );
        println!("  simulated time: {:.2} ms\n", outcome.elapsed.millis());
    }

    println!(
        "The 8-bit (GST) run learns the task; at 6 bits most weight updates\n\
         round away on the coarse level grid — the paper's §II-B claim that\n\
         thermally tuned banks cannot support training."
    );
}
